#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/softmax.hpp"

namespace gpucnn::nn {
namespace {

Network classifier() {
  Network net;
  net.emplace<ConvLayer>("c",
                         ConvConfig{.batch = 1, .input = 8, .channels = 1,
                                    .filters = 4, .kernel = 3, .stride = 1,
                                    .pad = 1});
  net.emplace<ActivationLayer>("r");
  net.emplace<FcLayer>("fc", 4 * 8 * 8, 3);
  net.emplace<SoftmaxLayer>("s");
  Rng rng(1);
  net.initialize(rng);
  return net;
}

TEST(Trainer, HistoryHasOneEntryPerStep) {
  auto net = classifier();
  SyntheticDataset data(3, 1, 8);
  const auto history = fit(net, data, {.steps = 12, .batch_size = 8});
  EXPECT_EQ(history.steps.size(), 12U);
  for (const auto& s : history.steps) {
    EXPECT_GE(s.loss, 0.0);
    EXPECT_GE(s.accuracy, 0.0);
    EXPECT_LE(s.accuracy, 1.0);
  }
}

TEST(Trainer, LossDecreases) {
  auto net = classifier();
  SyntheticDataset data(3, 1, 8, 0.25);
  const auto history =
      fit(net, data,
          {.steps = 80, .batch_size = 16,
           .sgd = {.learning_rate = 0.05, .momentum = 0.9}});
  EXPECT_LT(history.tail_loss(), history.first_loss() * 0.5);
}

TEST(Trainer, EvaluateRunsInInferenceModeAndRestoresTraining) {
  auto net = classifier();
  SyntheticDataset data(3, 1, 8);
  (void)evaluate(net, data, 32);
  EXPECT_TRUE(net.layer(0).training());
}

TEST(Trainer, EvaluateAfterTrainingBeatsChance) {
  auto net = classifier();
  SyntheticDataset data(3, 1, 8, 0.25);
  (void)fit(net, data,
      {.steps = 100, .batch_size = 16,
       .sgd = {.learning_rate = 0.05, .momentum = 0.9}});
  const auto result = evaluate(net, data, 256);
  EXPECT_GT(result.accuracy, 0.7);  // chance is 1/3
}

TEST(Trainer, RejectsEmptyRuns) {
  auto net = classifier();
  SyntheticDataset data(3, 1, 8);
  EXPECT_THROW((void)fit(net, data, {.steps = 0}), Error);
}

TEST(Trainer, TailLossWindowing) {
  TrainHistory h;
  for (const double l : {10.0, 8.0, 6.0, 4.0, 2.0}) {
    h.steps.push_back({l, 0.0});
  }
  EXPECT_DOUBLE_EQ(h.tail_loss(2), 3.0);
  EXPECT_DOUBLE_EQ(h.tail_loss(100), 6.0);  // clamps to size
  EXPECT_DOUBLE_EQ(h.first_loss(), 10.0);
  EXPECT_DOUBLE_EQ(h.last_loss(), 2.0);
}

}  // namespace
}  // namespace gpucnn::nn
