// Device-model tests: the second (Titan X) device and the stability of
// the paper's findings across devices.
#include <gtest/gtest.h>

#include "analysis/conv_runner.hpp"
#include "analysis/sweep.hpp"
#include "gpusim/device.hpp"
#include "gpusim/occupancy.hpp"

namespace gpucnn::gpusim {
namespace {

TEST(TitanX, DerivedQuantities) {
  const auto dev = gtx_titan_x();
  // 3072 cores at 1 GHz -> 6.14 TFLOPS.
  EXPECT_NEAR(dev.peak_sp_gflops(), 6144.0, 1.0);
  EXPECT_GT(dev.peak_sp_gflops(), tesla_k40c().peak_sp_gflops());
  EXPECT_GT(dev.sustained_bandwidth_gbs(),
            tesla_k40c().sustained_bandwidth_gbs());
}

TEST(TitanX, OccupancyUsesItsOwnLimits) {
  // Maxwell's 96KB shared memory admits more blocks than Kepler's 48KB.
  const auto kepler = compute_occupancy(tesla_k40c(), 128, 32, 16 * 1024);
  const auto maxwell = compute_occupancy(gtx_titan_x(), 128, 32, 16 * 1024);
  EXPECT_GT(maxwell.active_blocks_per_sm, kepler.active_blocks_per_sm);
}

TEST(TitanX, EveryImplementationSpeedsUp) {
  const auto cfg = analysis::base_config();
  for (const auto id : frameworks::all_frameworks()) {
    const auto on_kepler = analysis::evaluate(id, cfg, tesla_k40c());
    const auto on_maxwell = analysis::evaluate(id, cfg, gtx_titan_x());
    EXPECT_LT(on_maxwell.runtime_ms, on_kepler.runtime_ms)
        << frameworks::to_string(id);
  }
}

TEST(TitanX, PaperOrderingIsDeviceStable) {
  // The study's headline orderings are properties of the algorithms, not
  // the device: they must survive the upgrade.
  const auto cfg = analysis::base_config();
  const auto dev = gtx_titan_x();
  const auto rs = analysis::evaluate_all(cfg, dev);
  double fb = 0.0;
  double cudnn = 0.0;
  double caffe = 0.0;
  double theano = 0.0;
  for (const auto& r : rs) {
    switch (r.framework) {
      case frameworks::FrameworkId::kFbfft:
        fb = r.runtime_ms;
        break;
      case frameworks::FrameworkId::kCudnn:
        cudnn = r.runtime_ms;
        break;
      case frameworks::FrameworkId::kCaffe:
        caffe = r.runtime_ms;
        break;
      case frameworks::FrameworkId::kTheanoFft:
        theano = r.runtime_ms;
        break;
      default:
        break;
    }
  }
  EXPECT_LT(fb, cudnn);      // fbfft fastest at k=11
  EXPECT_LT(cudnn, caffe);   // cuDNN best unrolling
  EXPECT_GT(theano, caffe);  // Theano-fft slowest
}

TEST(TitanX, SmallKernelCrossoverSurvives) {
  ConvConfig cfg = analysis::base_config();
  cfg.kernel = 3;
  const auto dev = gtx_titan_x();
  const auto cudnn =
      analysis::evaluate(frameworks::FrameworkId::kCudnn, cfg, dev);
  const auto fbfft =
      analysis::evaluate(frameworks::FrameworkId::kFbfft, cfg, dev);
  EXPECT_LT(cudnn.runtime_ms, fbfft.runtime_ms);
}

TEST(TitanX, MemoryFootprintIsDeviceIndependent) {
  // Buffers depend on the workload, not the device (both cards carry
  // 12 GB here).
  const auto cfg = analysis::base_config();
  for (const auto id : frameworks::all_frameworks()) {
    const auto a = analysis::evaluate(id, cfg, tesla_k40c());
    const auto b = analysis::evaluate(id, cfg, gtx_titan_x());
    EXPECT_DOUBLE_EQ(a.peak_mb, b.peak_mb) << frameworks::to_string(id);
  }
}

}  // namespace
}  // namespace gpucnn::gpusim
