// Analysis-layer tests: sweep machinery, evaluation driver, report
// rendering and model breakdowns.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/conv_runner.hpp"
#include "analysis/model_breakdown.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"

namespace gpucnn::analysis {
namespace {

using frameworks::FrameworkId;

TEST(Sweep, BaseConfigIsPaperTuple) {
  EXPECT_EQ(base_config().to_string(), "(64,128,64,11,1)");
  EXPECT_EQ(base_config().channels, 3U);
}

TEST(Sweep, PaperSweepRanges) {
  const auto sweeps = paper_sweeps();
  ASSERT_EQ(sweeps.size(), 5U);
  EXPECT_EQ(sweeps[0].values.front(), 32U);  // batch 32..512 step 32
  EXPECT_EQ(sweeps[0].values.back(), 512U);
  EXPECT_EQ(sweeps[0].values.size(), 16U);
  EXPECT_EQ(sweeps[1].values.back(), 256U);  // input
  EXPECT_EQ(sweeps[2].values.size(), 31U);   // filters 32..512 step 16
  EXPECT_EQ(sweeps[4].values, (std::vector<std::size_t>{1, 2, 3, 4}));
}

TEST(Sweep, ConfigForVariesOnlyOneParameter) {
  const auto sweeps = paper_sweeps();
  const ConvConfig base = base_config();
  for (const auto& spec : sweeps) {
    const auto cfg = spec.config_for(spec.values.front());
    int differing = 0;
    differing += cfg.batch != base.batch;
    differing += cfg.input != base.input;
    differing += cfg.filters != base.filters;
    differing += cfg.kernel != base.kernel;
    differing += cfg.stride != base.stride;
    EXPECT_LE(differing, 1) << to_string(spec.parameter);
    EXPECT_EQ(cfg.channels, base.channels);
  }
}

TEST(Sweep, WinogradSweepsStayInTheEligibleFamily) {
  const ConvConfig base = winograd_base_config();
  EXPECT_EQ(base.to_string(), "(64,56,64,3,1)");
  EXPECT_EQ(base.channels, 64U);
  EXPECT_EQ(base.groups, 1U);
  const auto sweeps = winograd_sweeps();
  ASSERT_EQ(sweeps.size(), 3U);  // kernel and stride are pinned at (3, 1)
  EXPECT_EQ(sweeps[0].parameter, SweepParameter::kBatch);
  EXPECT_EQ(sweeps[1].parameter, SweepParameter::kInput);
  EXPECT_EQ(sweeps[2].parameter, SweepParameter::kFilters);
  for (const auto& spec : sweeps) {
    for (const std::size_t value : spec.values) {
      const ConvConfig cfg = spec.config_for(value);
      EXPECT_EQ(cfg.kernel, 3U) << to_string(spec.parameter);
      EXPECT_EQ(cfg.stride, 1U) << to_string(spec.parameter);
      EXPECT_EQ(cfg.groups, 1U) << to_string(spec.parameter);
      EXPECT_LE(cfg.pad, 2U) << to_string(spec.parameter);
    }
  }
}

TEST(Sweep, RunSweepCoversAllFrameworks) {
  SweepSpec spec{SweepParameter::kStride, {1, 2}};
  const auto points = run_sweep(spec);
  ASSERT_EQ(points.size(), 2U);
  for (const auto& p : points) {
    EXPECT_EQ(p.results.size(), 7U);
  }
}

TEST(ConvRunner, UnsupportedShapeReported) {
  ConvConfig cfg = base_config();
  cfg.stride = 2;
  const auto r = evaluate(FrameworkId::kFbfft, cfg);
  EXPECT_FALSE(r.supported);
  EXPECT_FALSE(r.unsupported_reason.empty());
  EXPECT_EQ(r.runtime_ms, 0.0);
}

TEST(ConvRunner, ResultFieldsConsistent) {
  const auto r = evaluate(FrameworkId::kCaffe, base_config());
  EXPECT_TRUE(r.supported);
  EXPECT_NEAR(r.runtime_ms, r.kernel_ms + r.transfer_ms, 1e-9);
  EXPECT_NEAR(r.transfer_share, r.transfer_ms / r.runtime_ms, 1e-9);
  EXPECT_GT(r.peak_mb, 0.0);
  EXPECT_FALSE(r.hotspots.empty());
  double share_sum = 0.0;
  for (const auto& h : r.hotspots) share_sum += h.share;
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
}

TEST(ConvRunner, OutOfMemoryFlaggedNotThrown) {
  // fbfft at an extreme shape exceeds the 12 GB card.
  ConvConfig cfg = base_config();
  cfg.batch = 512;
  cfg.filters = 512;
  const auto r = evaluate(FrameworkId::kFbfft, cfg);
  EXPECT_TRUE(r.supported);
  EXPECT_TRUE(r.out_of_memory);
  EXPECT_GT(r.peak_mb, 12000.0);
}

TEST(ConvRunner, PassSplitCoversKernelTime) {
  // The per-pass tags partition the kernel time (convnet-benchmarks
  // split), and backward costs roughly twice forward for GEMM-style
  // implementations.
  for (const auto id :
       {FrameworkId::kCaffe, FrameworkId::kCudnn,
        FrameworkId::kCudaConvnet2, FrameworkId::kFbfft}) {
    const auto r = evaluate(id, base_config());
    double sum = 0.0;
    for (const auto& [pass, ms] : r.pass_ms) sum += ms;
    EXPECT_NEAR(sum, r.kernel_ms, 1e-6) << frameworks::to_string(id);
    EXPECT_GT(r.forward_ms(), 0.0) << frameworks::to_string(id);
    const double ratio = r.backward_ms() / r.forward_ms();
    EXPECT_GT(ratio, 1.5) << frameworks::to_string(id);
    EXPECT_LT(ratio, 3.0) << frameworks::to_string(id);
  }
}

TEST(ConvRunner, PassNames) {
  EXPECT_STREQ(gpusim::to_string(gpusim::Pass::kForward), "forward");
  EXPECT_STREQ(gpusim::to_string(gpusim::Pass::kBackwardData),
               "backward-data");
  EXPECT_STREQ(gpusim::to_string(gpusim::Pass::kBackwardFilter),
               "backward-filter");
  EXPECT_STREQ(gpusim::to_string(gpusim::Pass::kAuxiliary), "auxiliary");
}

TEST(ConvRunner, EvaluateAllPreservesOrder) {
  const auto rs = evaluate_all(base_config());
  ASSERT_EQ(rs.size(), 7U);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].framework, frameworks::kAllFrameworks[i]);
  }
}

TEST(Report, TableRendersHeaderAndRows) {
  Table t("demo");
  t.header({"a", "bee"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("bee"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2U);
}

TEST(Report, CsvEscapesSpecialCells) {
  Table t("csv");
  t.header({"name", "value"});
  t.row({"plain", "1"});
  t.row({"with,comma", "quote\"inside"});
  std::ostringstream os;
  t.to_csv(os);
  EXPECT_EQ(os.str(),
            "name,value\n"
            "plain,1\n"
            "\"with,comma\",\"quote\"\"inside\"\n");
}

TEST(Report, CsvWithoutHeaderOmitsHeaderRow) {
  Table t("csv");
  t.row({"a", "b"});
  std::ostringstream os;
  t.to_csv(os);
  EXPECT_EQ(os.str(), "a,b\n");
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_percent(0.1234), "12.3%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(ModelBreakdownTest, SharesSumToOne) {
  const auto b = breakdown_model(nn::alexnet(32));
  double total_share = 0.0;
  for (const auto& [kind, ms] : b.by_kind) {
    total_share += b.share(kind);
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  EXPECT_EQ(b.layers.size(), nn::alexnet(32).layers.size());
}

TEST(ModelBreakdownTest, ConvFrameworkChangesConvTimeOnly) {
  const auto caffe =
      breakdown_model(nn::alexnet(32), FrameworkId::kCaffe);
  const auto cudnn =
      breakdown_model(nn::alexnet(32), FrameworkId::kCudnn);
  EXPECT_LT(cudnn.by_kind.at(nn::LayerSpec::Kind::kConv),
            caffe.by_kind.at(nn::LayerSpec::Kind::kConv));
  EXPECT_NEAR(cudnn.by_kind.at(nn::LayerSpec::Kind::kFc),
              caffe.by_kind.at(nn::LayerSpec::Kind::kFc), 1e-9);
}

TEST(ModelBreakdownTest, BiggerBatchTakesLonger) {
  const auto small = breakdown_model(nn::alexnet(32));
  const auto large = breakdown_model(nn::alexnet(128));
  EXPECT_GT(large.total_ms, small.total_ms * 2.0);
}

TEST(ModelBreakdownTest, MissingKindHasZeroShare) {
  const auto b = breakdown_model(nn::vgg16(8));
  EXPECT_DOUBLE_EQ(b.share(nn::LayerSpec::Kind::kConcat), 0.0);
}

}  // namespace
}  // namespace gpucnn::analysis
