#include "gpusim/occupancy.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace gpucnn::gpusim {
namespace {

const DeviceSpec kDev = tesla_k40c();

TEST(Occupancy, FullOccupancyForLightKernel) {
  // 256 threads, 32 regs, no smem: 8 blocks x 8 warps = 64 warps = 100%.
  const auto occ = compute_occupancy(kDev, 256, 32, 0);
  EXPECT_EQ(occ.active_warps_per_sm, 64U);
  EXPECT_DOUBLE_EQ(occ.theoretical, 1.0);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kWarps);
}

TEST(Occupancy, RegisterLimited) {
  // 128 regs x 256 threads = 32768 regs/block -> 2 blocks -> 16 warps.
  const auto occ = compute_occupancy(kDev, 256, 128, 0);
  EXPECT_EQ(occ.active_blocks_per_sm, 2U);
  EXPECT_EQ(occ.active_warps_per_sm, 16U);
  EXPECT_DOUBLE_EQ(occ.theoretical, 0.25);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kRegisters);
}

TEST(Occupancy, PaperConvnet2Case) {
  // The paper's §V.C.1 analysis: 116 regs/thread on cuda-convnet2 caps
  // theoretical active threads near 564 (we quantise to whole blocks).
  const auto occ = compute_occupancy(kDev, 128, 116, 16 * 1024);
  // smem: 48KB/16KB = 3 blocks; regs: 65536/(116*128) = 4 blocks.
  EXPECT_EQ(occ.active_blocks_per_sm, 3U);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kSharedMemory);
  EXPECT_LT(occ.theoretical, 0.25);
}

TEST(Occupancy, SharedMemoryLimited) {
  // 24KB smem -> 2 blocks regardless of registers.
  const auto occ = compute_occupancy(kDev, 128, 16, 24 * 1024);
  EXPECT_EQ(occ.active_blocks_per_sm, 2U);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kSharedMemory);
}

TEST(Occupancy, BlockCountLimited) {
  // Tiny blocks: 32 threads -> warp limit would allow 64 blocks, but the
  // hardware caps at 16 resident blocks.
  const auto occ = compute_occupancy(kDev, 32, 16, 0);
  EXPECT_EQ(occ.active_blocks_per_sm, 16U);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kBlocks);
  EXPECT_DOUBLE_EQ(occ.theoretical, 0.25);
}

TEST(Occupancy, TheanoFftHighOccupancy) {
  // 2 regs, 4.5KB smem, 128 threads: smem allows 10 blocks -> 40 warps.
  const auto occ = compute_occupancy(
      kDev, 128, 2, static_cast<std::size_t>(4.5 * 1024));
  EXPECT_EQ(occ.active_blocks_per_sm, 10U);
  EXPECT_DOUBLE_EQ(occ.theoretical, 40.0 / 64.0);
}

TEST(Occupancy, PartialWarpRoundsUp) {
  // 33 threads occupy two warps.
  const auto occ = compute_occupancy(kDev, 33, 16, 0);
  EXPECT_EQ(occ.active_warps_per_sm % 2, 0U);
}

TEST(Occupancy, InvalidConfigsThrow) {
  EXPECT_THROW((void)compute_occupancy(kDev, 0, 32, 0), Error);
  EXPECT_THROW((void)compute_occupancy(kDev, 2048, 32, 0), Error);  // > 1024
  EXPECT_THROW((void)compute_occupancy(kDev, 128, 300, 0), Error);  // > 255 regs
  EXPECT_THROW((void)compute_occupancy(kDev, 128, 32, 64 * 1024), Error);
}

TEST(Occupancy, CannotFitSingleBlockThrows) {
  // 1024 threads x 255 regs = 261k regs > 64k register file.
  EXPECT_THROW((void)compute_occupancy(kDev, 1024, 255, 0), Error);
}

TEST(Occupancy, MonotoneInRegisters) {
  double last = 2.0;
  for (const std::size_t regs : {16, 32, 64, 96, 128, 200}) {
    const auto occ = compute_occupancy(kDev, 256, regs, 0);
    EXPECT_LE(occ.theoretical, last);
    last = occ.theoretical;
  }
}

TEST(Occupancy, LimiterNames) {
  EXPECT_EQ(to_string(OccupancyLimiter::kWarps), "warps");
  EXPECT_EQ(to_string(OccupancyLimiter::kRegisters), "registers");
  EXPECT_EQ(to_string(OccupancyLimiter::kSharedMemory), "shared-memory");
  EXPECT_EQ(to_string(OccupancyLimiter::kBlocks), "blocks");
}

TEST(DeviceSpec, K40cDerivedQuantities) {
  const DeviceSpec dev = tesla_k40c();
  // Paper §III.A: 2880 cores at 745 MHz -> 4.29 TFLOPS single precision.
  EXPECT_NEAR(dev.peak_sp_gflops(), 4291.2, 0.1);
  EXPECT_NEAR(dev.sustained_bandwidth_gbs(), 288.0 * 0.78, 0.1);
  EXPECT_GT(dev.shared_bandwidth_gbs(), 1000.0);
}

}  // namespace
}  // namespace gpucnn::gpusim
