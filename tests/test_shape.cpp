#include "core/shape.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gpucnn {
namespace {

TEST(TensorShape, CountMultipliesDims) {
  const TensorShape s{2, 3, 4, 5};
  EXPECT_EQ(s.count(), 120U);
  EXPECT_EQ(s.spatial(), 20U);
}

TEST(TensorShape, Equality) {
  EXPECT_EQ((TensorShape{1, 2, 3, 4}), (TensorShape{1, 2, 3, 4}));
  EXPECT_NE((TensorShape{1, 2, 3, 4}), (TensorShape{1, 2, 3, 5}));
}

TEST(ConvConfig, OutputSizeBasic) {
  const ConvConfig cfg{.batch = 1, .input = 128, .channels = 3,
                       .filters = 4, .kernel = 11, .stride = 1};
  EXPECT_EQ(cfg.output(), 118U);
}

TEST(ConvConfig, OutputSizeWithStride) {
  const ConvConfig cfg{.batch = 1, .input = 227, .channels = 3,
                       .filters = 96, .kernel = 11, .stride = 4};
  EXPECT_EQ(cfg.output(), 55U);  // AlexNet conv1
}

TEST(ConvConfig, OutputSizeWithPadding) {
  const ConvConfig cfg{.batch = 1, .input = 13, .channels = 384,
                       .filters = 384, .kernel = 3, .stride = 1, .pad = 1};
  EXPECT_EQ(cfg.output(), 13U);  // "same" conv
}

TEST(ConvConfig, ThrowsWhenKernelExceedsInput) {
  const ConvConfig cfg{.batch = 1, .input = 4, .channels = 1, .filters = 1,
                       .kernel = 7, .stride = 1};
  EXPECT_THROW((void)cfg.output(), Error);
}

TEST(ConvConfig, ShapesAreConsistent) {
  const ConvConfig cfg{.batch = 64, .input = 128, .channels = 3,
                       .filters = 64, .kernel = 11, .stride = 1};
  EXPECT_EQ(cfg.input_shape(), (TensorShape{64, 3, 128, 128}));
  EXPECT_EQ(cfg.filter_shape(), (TensorShape{64, 3, 11, 11}));
  EXPECT_EQ(cfg.output_shape(), (TensorShape{64, 64, 118, 118}));
}

TEST(ConvConfig, ForwardFlopsFormula) {
  const ConvConfig cfg{.batch = 2, .input = 8, .channels = 3, .filters = 4,
                       .kernel = 3, .stride = 1};
  // 2 * N * F * C * o^2 * k^2 = 2*2*4*3*36*9
  EXPECT_DOUBLE_EQ(cfg.forward_flops(), 2.0 * 2 * 4 * 3 * 36 * 9);
}

TEST(ConvConfig, StreamFormatMatchesPaperTuple) {
  const ConvConfig cfg{.batch = 64, .input = 128, .channels = 3,
                       .filters = 64, .kernel = 11, .stride = 1};
  std::ostringstream os;
  os << cfg;
  EXPECT_EQ(os.str(), "(64,128,64,11,1)");
  EXPECT_EQ(cfg.to_string(), "(64,128,64,11,1)");
}

TEST(TableOne, MatchesPaperTable) {
  EXPECT_EQ(TableOne::layer(0).to_string(), "(128,128,96,11,1)");
  EXPECT_EQ(TableOne::layer(1).to_string(), "(128,128,96,3,1)");
  EXPECT_EQ(TableOne::layer(2).to_string(), "(128,32,128,9,1)");
  EXPECT_EQ(TableOne::layer(3).to_string(), "(128,16,128,7,1)");
  EXPECT_EQ(TableOne::layer(4).to_string(), "(128,13,384,3,1)");
}

TEST(TableOne, NamesAndBounds) {
  EXPECT_EQ(TableOne::name(0), "Conv1");
  EXPECT_EQ(TableOne::name(4), "Conv5");
  EXPECT_THROW(TableOne::layer(5), Error);
  EXPECT_THROW(TableOne::name(5), Error);
}

TEST(TableOne, AllLayersHaveValidGeometry) {
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    EXPECT_GT(TableOne::layer(i).output(), 0U);
  }
}

}  // namespace
}  // namespace gpucnn
