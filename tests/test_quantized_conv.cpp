// Int8 conv forwards against the fp32 oracle, with quantization-aware
// tolerances, plus the QuantizedConvLayer / Network::quantize life
// cycle.
#include "conv/quantized_conv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "nn/activation_layer.hpp"
#include "nn/network.hpp"
#include "nn/quantized_conv_layer.hpp"

namespace gpucnn::conv {
namespace {

// Worst-case dequantized error of one output value: each of the K
// multiply-accumulates can be off by (|w|max * da/2 + |a|max * dw/2 +
// da*dw/4), where da/dw are the activation/weight quantization steps.
double quant_tolerance(const ConvConfig& cfg, float act_absmax,
                       float w_absmax) {
  const double k = static_cast<double>(cfg.group_channels()) * cfg.kernel *
                   cfg.kernel;
  const double da = 2.0 * act_absmax / 255.0;  // range widened around 0
  const double dw = static_cast<double>(w_absmax) / 63.0;
  const double per_term = static_cast<double>(act_absmax) * dw / 2.0 +
                          static_cast<double>(w_absmax) * da / 2.0 +
                          da * dw / 4.0;
  return k * per_term;  // no slack: the bound itself is already loose
}

void expect_quantized_close_to_fp32(const ConvConfig& cfg, bool implicit,
                                    bool relu) {
  Rng rng(42);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng, -1.0F, 1.0F);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng, -0.5F, 0.5F);
  std::vector<float> bias(cfg.filters);
  for (std::size_t i = 0; i < bias.size(); ++i) {
    bias[i] = 0.1F * static_cast<float>(i % 5) - 0.2F;
  }

  const auto fp32 = make_engine(Strategy::kUnrolling);
  Tensor want(cfg.output_shape());
  ASSERT_TRUE(fp32->forward_fused(cfg, input, filters, bias, relu, want));

  const std::size_t ckk = cfg.group_channels() * cfg.kernel * cfg.kernel;
  const quant::QuantizedFilters qw =
      quant::quantize_filters(filters.data(), cfg.filters, ckk);
  const quant::ActQuant aq = quant::choose_act_quant(-1.0F, 1.0F);
  Tensor got(cfg.output_shape());
  if (implicit) {
    quantized_implicit_forward(cfg, input, qw, aq, bias, relu, got);
  } else {
    quantized_gemm_forward(cfg, input, qw, aq, bias, relu, got);
  }

  const double tol = quant_tolerance(cfg, 1.0F, 0.5F);
  const auto w = want.data();
  const auto g = got.data();
  double max_diff = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    max_diff = std::max(max_diff, std::fabs(static_cast<double>(w[i]) -
                                            static_cast<double>(g[i])));
  }
  EXPECT_LT(max_diff, tol);
  EXPECT_GT(max_diff, 0.0) << "suspiciously exact for a quantized path";
}

TEST(QuantizedConvTest, GemmPathTracksFp32WithinQuantTolerance) {
  const ConvConfig cfg{.batch = 2, .input = 12, .channels = 3, .filters = 8,
                       .kernel = 3, .stride = 1, .pad = 1, .groups = 1};
  expect_quantized_close_to_fp32(cfg, /*implicit=*/false, /*relu=*/false);
  expect_quantized_close_to_fp32(cfg, /*implicit=*/false, /*relu=*/true);
}

TEST(QuantizedConvTest, ImplicitPathTracksFp32WithinQuantTolerance) {
  const ConvConfig cfg{.batch = 2, .input = 12, .channels = 3, .filters = 8,
                       .kernel = 3, .stride = 1, .pad = 1, .groups = 1};
  expect_quantized_close_to_fp32(cfg, /*implicit=*/true, /*relu=*/false);
  expect_quantized_close_to_fp32(cfg, /*implicit=*/true, /*relu=*/true);
}

TEST(QuantizedConvTest, GemmPathSupportsGroupsAndStride) {
  const ConvConfig grouped{.batch = 1, .input = 10, .channels = 4,
                           .filters = 8, .kernel = 3, .stride = 1,
                           .pad = 1, .groups = 2};
  expect_quantized_close_to_fp32(grouped, /*implicit=*/false,
                                 /*relu=*/false);
  const ConvConfig strided{.batch = 1, .input = 11, .channels = 3,
                           .filters = 6, .kernel = 5, .stride = 2,
                           .pad = 2, .groups = 1};
  expect_quantized_close_to_fp32(strided, /*implicit=*/false,
                                 /*relu=*/true);
}

TEST(QuantizedConvTest, EngineAdaptersAreForwardOnly) {
  const ConvConfig cfg{.batch = 1, .input = 8, .channels = 2, .filters = 4,
                       .kernel = 3, .stride = 1, .pad = 1, .groups = 1};
  const QuantizedGemmConv engine;
  Rng rng(7);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);
  Tensor out(cfg.output_shape());
  EXPECT_NO_THROW(engine.forward(cfg, input, filters, out));
  Tensor grad(cfg.output_shape());
  Tensor gin(cfg.input_shape());
  EXPECT_THROW(engine.backward_data(cfg, grad, filters, gin), Error);
  Tensor gw(cfg.filter_shape());
  EXPECT_THROW(engine.backward_filter(cfg, input, grad, gw), Error);
}

TEST(QuantizedNetworkTest, QuantizeCalibratesFreezesAndStaysAccurate) {
  const ConvConfig geom{.batch = 1, .input = 8, .channels = 2, .filters = 6,
                        .kernel = 3, .stride = 1, .pad = 1, .groups = 1};
  nn::Network fp32_net;
  fp32_net.emplace<nn::ConvLayer>("c1", geom);
  fp32_net.emplace<nn::ActivationLayer>("relu1", nn::Activation::kRelu);
  Rng rng(21);
  fp32_net.initialize(rng);
  ASSERT_EQ(fp32_net.fuse_conv_relu(), 1U);

  nn::Network int8_net;
  int8_net.emplace<nn::ConvLayer>("c1", geom);
  int8_net.emplace<nn::ActivationLayer>("relu1", nn::Activation::kRelu);
  int8_net.initialize(rng);
  ASSERT_EQ(int8_net.fuse_conv_relu(), 1U);
  int8_net.share_parameters(fp32_net);

  std::vector<Tensor> calibration(2);
  for (auto& t : calibration) {
    t.resize(geom.input_shape());
    t.fill_uniform(rng, -1.0F, 1.0F);
  }
  const auto report = int8_net.quantize(calibration);
  EXPECT_EQ(report.layers_quantized, 1U);
  EXPECT_EQ(report.layers_calibrated, 1U);
  EXPECT_EQ(report.calibration_batches, 2U);
  const auto* qlayer =
      dynamic_cast<const nn::QuantizedConvLayer*>(&int8_net.layer(0));
  ASSERT_NE(qlayer, nullptr);
  EXPECT_TRUE(qlayer->frozen());
  EXPECT_TRUE(qlayer->fused_relu());

  Tensor probe(geom.input_shape());
  probe.fill_uniform(rng, -1.0F, 1.0F);
  const Tensor& want = fp32_net.forward(probe);
  const Tensor& got = int8_net.forward(probe);
  const double tol = quant_tolerance(geom, 1.0F, 1.5F);
  const auto w = want.data();
  const auto g = got.data();
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], g[i], tol);
  }

  int8_net.set_training(true);
  (void)int8_net.forward(probe);
  Tensor grad(want.shape());
  grad.fill(1.0F);
  EXPECT_THROW(int8_net.backward(grad), Error);
}

TEST(QuantizedNetworkTest, QuantizeTwiceIsANoOp) {
  // QuantizedConvLayer derives from Layer, not ConvLayer, so the
  // dynamic_cast filter in Network::quantize() must skip already-
  // quantized slots: a second call rewrites nothing and the outputs
  // stay bit-identical.
  const ConvConfig geom{.batch = 1, .input = 8, .channels = 2, .filters = 4,
                        .kernel = 3, .stride = 1, .pad = 1, .groups = 1};
  nn::Network net;
  net.emplace<nn::ConvLayer>("c1", geom);
  net.emplace<nn::ActivationLayer>("relu1", nn::Activation::kRelu);
  Rng rng(51);
  net.initialize(rng);
  ASSERT_EQ(net.fuse_conv_relu(), 1U);

  std::vector<Tensor> calibration(1);
  calibration[0].resize(geom.input_shape());
  calibration[0].fill_uniform(rng, -1.0F, 1.0F);
  const auto first = net.quantize(calibration);
  EXPECT_EQ(first.layers_quantized, 1U);

  Tensor probe(geom.input_shape());
  probe.fill_uniform(rng, -1.0F, 1.0F);
  Tensor before = net.forward(probe);  // copy: forward() returns a ref

  const auto second = net.quantize(calibration);
  EXPECT_EQ(second.layers_quantized, 0U);
  EXPECT_EQ(second.calibration_batches, 0U);
  const Tensor& after = net.forward(probe);
  EXPECT_EQ(max_abs_diff(before, after), 0.0);
}

TEST(QuantizedNetworkTest, DepthwiseConvLayersQuantize) {
  // A depthwise (groups == channels) layer goes through the grouped
  // im2col + igemm path; quantize() must rewrite it like any conv and
  // track the fp32 network within quantization tolerance.
  const ConvConfig geom{.batch = 2, .input = 8, .channels = 4, .filters = 8,
                        .kernel = 3, .stride = 1, .pad = 1, .groups = 4};
  nn::Network fp32_net;
  fp32_net.emplace<nn::ConvLayer>("dw", geom);
  Rng rng(52);
  fp32_net.initialize(rng);

  nn::Network int8_net;
  int8_net.emplace<nn::ConvLayer>("dw", geom);
  int8_net.initialize(rng);
  int8_net.share_parameters(fp32_net);

  std::vector<Tensor> calibration(2);
  for (auto& t : calibration) {
    t.resize(geom.input_shape());
    t.fill_uniform(rng, -1.0F, 1.0F);
  }
  const auto report = int8_net.quantize(calibration);
  EXPECT_EQ(report.layers_quantized, 1U);
  EXPECT_EQ(report.layers_calibrated, 1U);

  Tensor probe(geom.input_shape());
  probe.fill_uniform(rng, -1.0F, 1.0F);
  const Tensor& want = fp32_net.forward(probe);
  const Tensor& got = int8_net.forward(probe);
  const double tol = quant_tolerance(geom, 1.0F, 1.5F);
  const auto w = want.data();
  const auto g = got.data();
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], g[i], tol);
  }
}

TEST(QuantizedNetworkTest, QuantizeWithoutCalibrationGoesDynamic) {
  const ConvConfig geom{.batch = 1, .input = 6, .channels = 1, .filters = 2,
                        .kernel = 3, .stride = 1, .pad = 1, .groups = 1};
  nn::Network net;
  net.emplace<nn::ConvLayer>("c1", geom);
  Rng rng(33);
  net.initialize(rng);
  const auto report = net.quantize();
  EXPECT_EQ(report.layers_quantized, 1U);
  EXPECT_EQ(report.layers_calibrated, 0U);
  const auto* qlayer =
      dynamic_cast<const nn::QuantizedConvLayer*>(&net.layer(0));
  ASSERT_NE(qlayer, nullptr);
  EXPECT_TRUE(qlayer->frozen());
  EXPECT_FALSE(qlayer->calibrated());
  Tensor probe(geom.input_shape());
  probe.fill_uniform(rng, -2.0F, 2.0F);
  EXPECT_NO_THROW((void)net.forward(probe));
}

}  // namespace
}  // namespace gpucnn::conv
