#include "frameworks/framework.hpp"

#include <gtest/gtest.h>

#include "analysis/sweep.hpp"
#include "core/error.hpp"

namespace gpucnn::frameworks {
namespace {

const ConvConfig kBase = analysis::base_config();

TEST(Registry, AllSevenPresentWithPaperNames) {
  ASSERT_EQ(all_frameworks().size(), 7U);
  EXPECT_EQ(framework(FrameworkId::kCaffe).name(), "Caffe");
  EXPECT_EQ(framework(FrameworkId::kCudnn).name(), "cuDNN");
  EXPECT_EQ(framework(FrameworkId::kTorchCunn).name(), "Torch-cunn");
  EXPECT_EQ(framework(FrameworkId::kTheanoCorrMM).name(), "Theano-CorrMM");
  EXPECT_EQ(framework(FrameworkId::kCudaConvnet2).name(), "cuda-convnet2");
  EXPECT_EQ(framework(FrameworkId::kFbfft).name(), "fbfft");
  EXPECT_EQ(framework(FrameworkId::kTheanoFft).name(), "Theano-fft");
}

TEST(Registry, IdsRoundTrip) {
  for (const auto id : all_frameworks()) {
    EXPECT_EQ(framework(id).id(), id);
  }
}

TEST(Registry, StrategiesMatchPaperTaxonomy) {
  // Paper §II.B assigns each implementation to one of three strategies.
  EXPECT_EQ(framework(FrameworkId::kCaffe).strategy(),
            conv::Strategy::kUnrolling);
  EXPECT_EQ(framework(FrameworkId::kCudnn).strategy(),
            conv::Strategy::kUnrolling);
  EXPECT_EQ(framework(FrameworkId::kTorchCunn).strategy(),
            conv::Strategy::kUnrolling);
  EXPECT_EQ(framework(FrameworkId::kTheanoCorrMM).strategy(),
            conv::Strategy::kUnrolling);
  EXPECT_EQ(framework(FrameworkId::kCudaConvnet2).strategy(),
            conv::Strategy::kDirect);
  EXPECT_EQ(framework(FrameworkId::kFbfft).strategy(),
            conv::Strategy::kFft);
  EXPECT_EQ(framework(FrameworkId::kTheanoFft).strategy(),
            conv::Strategy::kFft);
}

TEST(ShapeLimits, UnrollingSupportsAnything) {
  // Paper §IV.B: "unrolling-based implementations are most flexible ...
  // they support any possible shapes."
  ConvConfig odd{.batch = 7, .input = 33, .channels = 5, .filters = 13,
                 .kernel = 4, .stride = 3, .pad = 1};
  for (const auto id :
       {FrameworkId::kCaffe, FrameworkId::kCudnn, FrameworkId::kTorchCunn,
        FrameworkId::kTheanoCorrMM}) {
    EXPECT_TRUE(framework(id).supports(odd).ok);
  }
}

TEST(ShapeLimits, Convnet2BatchMultipleOf32) {
  ConvConfig cfg = kBase;
  cfg.batch = 33;
  const auto s = framework(FrameworkId::kCudaConvnet2).supports(cfg);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.reason.find("32"), std::string::npos);
  cfg.batch = 96;
  EXPECT_TRUE(framework(FrameworkId::kCudaConvnet2).supports(cfg).ok);
}

TEST(ShapeLimits, Convnet2FiltersMultipleOf16) {
  ConvConfig cfg = kBase;
  cfg.filters = 40;
  EXPECT_FALSE(framework(FrameworkId::kCudaConvnet2).supports(cfg).ok);
  cfg.filters = 48;
  EXPECT_TRUE(framework(FrameworkId::kCudaConvnet2).supports(cfg).ok);
}

TEST(ShapeLimits, FftImplementationsRequireStrideOne) {
  ConvConfig cfg = kBase;
  cfg.stride = 2;
  for (const auto id : {FrameworkId::kFbfft, FrameworkId::kTheanoFft}) {
    const auto s = framework(id).supports(cfg);
    EXPECT_FALSE(s.ok);
    EXPECT_NE(s.reason.find("stride"), std::string::npos);
    EXPECT_THROW(framework(id).plan(cfg), Error);
  }
}

TEST(ShapeLimits, PlanThrowsOnUnsupportedShape) {
  ConvConfig cfg = kBase;
  cfg.batch = 50;
  EXPECT_THROW(framework(FrameworkId::kCudaConvnet2).plan(cfg), Error);
}

TEST(TableTwo, MatchesPaperValues) {
  const struct {
    FrameworkId id;
    std::size_t regs;
    double smem_kb;
  } rows[] = {
      {FrameworkId::kCaffe, 86, 8.5},
      {FrameworkId::kCudnn, 80, 8.4},
      {FrameworkId::kTorchCunn, 84, 8.1},
      {FrameworkId::kTheanoCorrMM, 72, 7.0},
      {FrameworkId::kCudaConvnet2, 116, 16.0},
      {FrameworkId::kFbfft, 106, 10.0},
      {FrameworkId::kTheanoFft, 2, 4.5},
  };
  for (const auto& row : rows) {
    const auto& fw = framework(row.id);
    EXPECT_EQ(fw.table2_registers(), row.regs) << fw.name();
    EXPECT_DOUBLE_EQ(fw.table2_smem_kb(), row.smem_kb) << fw.name();
  }
}

TEST(Plans, DominantKernelUsesTableTwoResources) {
  // The heaviest kernel of each plan must carry the Table II registers.
  for (const auto id : all_frameworks()) {
    const auto& fw = framework(id);
    const auto plan = fw.plan(kBase);
    ASSERT_FALSE(plan.kernels.empty()) << fw.name();
    const gpusim::KernelProfile* heaviest = &plan.kernels.front();
    gpusim::Profiler profiler(gpusim::tesla_k40c());
    double best = 0.0;
    for (const auto& k : plan.kernels) {
      const double ms = profiler.launch(k).duration_ms;
      if (ms > best) {
        best = ms;
        heaviest = &k;
      }
    }
    EXPECT_EQ(heaviest->regs_per_thread, fw.table2_registers())
        << fw.name() << " heaviest kernel " << heaviest->name;
  }
}

TEST(Plans, MemoryIncludesActivationsAndContext) {
  for (const auto id : all_frameworks()) {
    const auto plan = framework(id).plan(kBase);
    EXPECT_FALSE(plan.memory.empty());
    // Peak must at least cover input + filters + output.
    const double lower_bound =
        (static_cast<double>(kBase.input_shape().count()) +
         static_cast<double>(kBase.filter_shape().count()) +
         static_cast<double>(kBase.output_shape().count())) *
        4.0;
    EXPECT_GT(plan.peak_bytes(), lower_bound);
  }
}

TEST(Plans, DirectConvolutionHasNoWorkspace) {
  // Paper §V.B: cuda-convnet2 "does not need temporary memory".
  EXPECT_DOUBLE_EQ(
      framework(FrameworkId::kCudaConvnet2).plan(kBase).workspace_bytes(),
      0.0);
  // Every other implementation allocates workspace.
  for (const auto id : all_frameworks()) {
    if (id == FrameworkId::kCudaConvnet2) continue;
    EXPECT_GT(framework(id).plan(kBase).workspace_bytes(), 0.0)
        << to_string(id);
  }
}

TEST(Plans, CudnnWinogradPlanIsToggleGated) {
  const ConvConfig eligible{.batch = 8, .input = 28, .channels = 64,
                            .filters = 64, .kernel = 3, .stride = 1,
                            .pad = 1};
  const auto& cudnn = framework(FrameworkId::kCudnn);

  // Default off: the paper profiles cuDNN v3, which predates winograd.
  for (const auto& k : cudnn.plan(eligible).kernels) {
    EXPECT_NE(k.kind, gpusim::KernelClass::kWinograd) << k.name;
  }

  const bool prev = set_cudnn_winograd_plan(true);
  EXPECT_FALSE(prev) << "winograd plan must default off";
  const ExecutionPlan plan = cudnn.plan(eligible);
  // Ineligible shapes keep the implicit-GEMM plan even when toggled on.
  const ExecutionPlan base_plan = cudnn.plan(kBase);  // 11x11 kernel
  set_cudnn_winograd_plan(prev);

  std::size_t batched_multiplies = 0;
  gpusim::Profiler profiler(gpusim::tesla_k40c());
  for (const auto& k : plan.kernels) {
    batched_multiplies += k.kind == gpusim::KernelClass::kWinograd;
    const auto& m = profiler.launch(k);
    EXPECT_GT(m.duration_ms, 0.0) << k.name;
  }
  EXPECT_EQ(batched_multiplies, 3U);  // one per pass
  EXPECT_GT(plan.workspace_bytes(), 0.0);  // U/V/M spectral planes
  for (const auto& k : base_plan.kernels) {
    EXPECT_NE(k.kind, gpusim::KernelClass::kWinograd) << k.name;
  }
  EXPECT_STREQ(to_string(gpusim::KernelClass::kWinograd), "winograd");
}

TEST(Plans, EveryKernelSimulates) {
  for (const auto id : all_frameworks()) {
    gpusim::Profiler profiler(gpusim::tesla_k40c());
    for (const auto& k : framework(id).plan(kBase).kernels) {
      const auto& m = profiler.launch(k);
      EXPECT_GT(m.duration_ms, 0.0) << k.name;
      EXPECT_GT(m.achieved_occupancy, 0.0) << k.name;
    }
  }
}

TEST(Plans, EnginesComputeRealConvolutions) {
  // Each framework's engine must actually compute; engines of the same
  // strategy are shared instances.
  const ConvConfig tiny{.batch = 2, .input = 8, .channels = 2,
                        .filters = 4, .kernel = 3, .stride = 1};
  Rng rng(5);
  Tensor in(tiny.input_shape());
  in.fill_uniform(rng);
  Tensor w(tiny.filter_shape());
  w.fill_uniform(rng);
  Tensor ref(tiny.output_shape());
  framework(FrameworkId::kCudaConvnet2).engine().forward(tiny, in, w, ref);
  for (const auto id : all_frameworks()) {
    Tensor out(tiny.output_shape());
    framework(id).engine().forward(tiny, in, w, out);
    EXPECT_LT(max_abs_diff(ref, out), 1e-3) << to_string(id);
  }
  EXPECT_EQ(&framework(FrameworkId::kCaffe).engine(),
            &framework(FrameworkId::kCudnn).engine());
}

TEST(Plans, FbfftMemoryStepsAtPowerOfTwoBoundary) {
  // Fig. 5(b): fbfft memory jumps when i crosses a power of two.
  ConvConfig below = kBase;
  below.input = 128;  // transform size 128
  ConvConfig above = kBase;
  above.input = 144;  // transform size 256
  const auto& fb = framework(FrameworkId::kFbfft);
  const double mem_below = fb.plan(below).peak_bytes();
  const double mem_above = fb.plan(above).peak_bytes();
  EXPECT_GT(mem_above, mem_below * 1.5);
}

TEST(Plans, TheanoFftBluesteinSpikes) {
  // Fig. 5(d): Theano-fft memory is non-monotonic in kernel size because
  // awkward cuFFT lengths trigger Bluestein fallbacks.
  const auto& th = framework(FrameworkId::kTheanoFft);
  ConvConfig cfg = kBase;
  cfg.kernel = 13;  // length 140 = 2^2*5*7 -> smooth
  const double smooth = th.plan(cfg).peak_bytes();
  cfg.kernel = 15;  // length 142 = 2*71 -> Bluestein
  const double spiky = th.plan(cfg).peak_bytes();
  EXPECT_GT(spiky, smooth * 1.1);
}

}  // namespace
}  // namespace gpucnn::frameworks
