// Winograd F(2x2, 3x3) — correctness against the direct-convolution
// oracle and its declared shape limits.
#include "conv/winograd_conv.hpp"

#include <gtest/gtest.h>

#include "conv/direct_conv.hpp"
#include "core/rng.hpp"

namespace gpucnn::conv {
namespace {

struct WinogradCase {
  ConvConfig cfg;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const WinogradCase& c) {
  return os << c.label;
}

class WinogradAgreement : public ::testing::TestWithParam<WinogradCase> {};

TEST_P(WinogradAgreement, ForwardMatchesDirect) {
  const ConvConfig cfg = GetParam().cfg;
  Rng rng(11);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor want(cfg.output_shape());
  DirectConv{}.forward(cfg, in, w, want);
  Tensor got(cfg.output_shape());
  WinogradConv{}.forward(cfg, in, w, got);
  EXPECT_LT(max_abs_diff(want, got),
            1e-4 * (1.0 + static_cast<double>(cfg.channels)));
}

TEST_P(WinogradAgreement, BackwardDataMatchesDirect) {
  const ConvConfig cfg = GetParam().cfg;
  Rng rng(12);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor want(cfg.input_shape());
  DirectConv{}.backward_data(cfg, gout, w, want);
  Tensor got(cfg.input_shape());
  WinogradConv{}.backward_data(cfg, gout, w, got);
  EXPECT_LT(max_abs_diff(want, got),
            1e-4 * (1.0 + static_cast<double>(cfg.filters)));
}

TEST_P(WinogradAgreement, BackwardFilterMatchesDirect) {
  const ConvConfig cfg = GetParam().cfg;
  Rng rng(13);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);
  Tensor want(cfg.filter_shape());
  DirectConv{}.backward_filter(cfg, in, gout, want);
  Tensor got(cfg.filter_shape());
  WinogradConv{}.backward_filter(cfg, in, gout, got);
  const double tol =
      1e-4 * (1.0 + 0.05 * static_cast<double>(cfg.batch) *
                        static_cast<double>(cfg.output()));
  EXPECT_LT(max_abs_diff(want, got), tol);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, WinogradAgreement,
    ::testing::Values(
        WinogradCase{{.batch = 1, .input = 4, .channels = 1, .filters = 1,
                      .kernel = 3, .stride = 1},
                     "single_tile"},
        WinogradCase{{.batch = 2, .input = 8, .channels = 3, .filters = 4,
                      .kernel = 3, .stride = 1},
                     "even_output"},
        WinogradCase{{.batch = 2, .input = 9, .channels = 2, .filters = 3,
                      .kernel = 3, .stride = 1},
                     "odd_output_partial_tile"},
        WinogradCase{{.batch = 1, .input = 13, .channels = 4, .filters = 2,
                      .kernel = 3, .stride = 1, .pad = 1},
                     "same_padding"},
        WinogradCase{{.batch = 3, .input = 6, .channels = 2, .filters = 2,
                      .kernel = 3, .stride = 1, .pad = 2},
                     "pad_two"},
        WinogradCase{{.batch = 1, .input = 32, .channels = 8, .filters = 8,
                      .kernel = 3, .stride = 1, .pad = 1},
                     "vgg_like_block"}));

TEST(WinogradLimits, OnlyThreeByThreeStrideOne) {
  WinogradConv w;
  EXPECT_TRUE(w.supports({.batch = 1, .input = 8, .channels = 1,
                          .filters = 1, .kernel = 3, .stride = 1}));
  EXPECT_FALSE(w.supports({.batch = 1, .input = 8, .channels = 1,
                           .filters = 1, .kernel = 5, .stride = 1}));
  EXPECT_FALSE(w.supports({.batch = 1, .input = 8, .channels = 1,
                           .filters = 1, .kernel = 3, .stride = 2}));
  EXPECT_FALSE(w.supports({.batch = 1, .input = 8, .channels = 1,
                           .filters = 1, .kernel = 3, .stride = 1,
                           .pad = 3}));
}

TEST(WinogradLimits, ForwardThrowsOnUnsupported) {
  const ConvConfig cfg{.batch = 1, .input = 8, .channels = 1, .filters = 1,
                       .kernel = 5, .stride = 1};
  Tensor in(cfg.input_shape());
  Tensor w(cfg.filter_shape());
  Tensor out(cfg.output_shape());
  EXPECT_THROW(WinogradConv{}.forward(cfg, in, w, out), Error);
}

TEST(WinogradFactory, AvailableThroughMakeEngine) {
  const auto engine = make_engine(Strategy::kWinograd);
  EXPECT_EQ(engine->strategy(), Strategy::kWinograd);
  EXPECT_EQ(engine->name(), "winograd");
  EXPECT_EQ(to_string(Strategy::kWinograd), "winograd");
}

TEST(WinogradMath, ArithmeticReductionIsSixteenThirtySixths) {
  EXPECT_NEAR(WinogradConv::arithmetic_reduction(), 16.0 / 36.0, 1e-12);
}

TEST(WinogradMath, IdentityFilterTransformsCleanly) {
  // A centred delta kernel must behave as identity on interior pixels.
  const ConvConfig cfg{.batch = 1, .input = 6, .channels = 1, .filters = 1,
                       .kernel = 3, .stride = 1, .pad = 1};
  Rng rng(14);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w(0, 0, 1, 1) = 1.0F;
  Tensor out(cfg.output_shape());
  WinogradConv{}.forward(cfg, in, w, out);
  EXPECT_LT(max_abs_diff(in, out), 1e-5);
}

}  // namespace
}  // namespace gpucnn::conv
