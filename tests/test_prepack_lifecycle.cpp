// Lifecycle of the persistent packed-weight cache: freeze packs once
// and changes nothing numerically, training invalidates, sharing
// aliases a single packed copy, and concurrent readers are safe.
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "conv/conv_engine.hpp"
#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/network.hpp"
#include "nn/pool_layer.hpp"
#include "obs/metrics.hpp"

namespace gpucnn::nn {
namespace {

/// Conv + FC sized so both forward GEMMs cross the blocked threshold
/// (m*n*k >= 64^3) at batch 8 — the packs are actually consumed, not
/// skipped by the small-problem naive fallback.
Network blocked_net() {
  Network net;
  net.emplace<ConvLayer>("conv",
                         ConvConfig{.batch = 1, .input = 16, .channels = 8,
                                    .filters = 16, .kernel = 3, .stride = 1,
                                    .pad = 1},
                         conv::Strategy::kUnrolling);
  net.emplace<ActivationLayer>("relu");
  net.emplace<PoolLayer>("pool", 2, 2);
  net.emplace<FcLayer>("fc", 8 * 8 * 16, 64);
  return net;
}

Tensor blocked_input(std::size_t batch, unsigned seed) {
  Rng rng(seed);
  Tensor in(batch, 8, 16, 16);
  in.fill_uniform(rng);
  return in;
}

const ConvLayer& conv_at(const Network& net, std::size_t i) {
  return dynamic_cast<const ConvLayer&>(net.layer(i));
}

const FcLayer& fc_at(const Network& net, std::size_t i) {
  return dynamic_cast<const FcLayer&>(net.layer(i));
}

TEST(PrepackLifecycle, FreezePacksEveryGemmLayerAndKeepsForwardBitIdentical) {
  Network net = blocked_net();
  Rng rng(7);
  net.initialize(rng);
  net.set_training(false);

  const Tensor in = blocked_input(8, 21);
  const Tensor staged = net.forward(in);  // copy: forward() reuses storage

  EXPECT_EQ(conv_at(net, 0).prepacked(), nullptr);
  EXPECT_EQ(fc_at(net, 3).prepacked(), nullptr);

  net.freeze_for_inference();
  ASSERT_NE(conv_at(net, 0).prepacked(), nullptr);
  ASSERT_NE(fc_at(net, 3).prepacked(), nullptr);

  const auto& hits = obs::metrics().counter("blas.sgemm.prepack_hits");
  const std::int64_t hits_before = hits.value();
  const Tensor& frozen = net.forward(in);
  EXPECT_EQ(max_abs_diff(staged, frozen), 0.0);
  EXPECT_GT(hits.value(), hits_before)
      << "the frozen forward never consumed a cached pack — the layer "
         "shapes no longer cross the blocked-GEMM threshold";
}

TEST(PrepackLifecycle, FreezeIsIdempotentOverUnchangedWeights) {
  Network net = blocked_net();
  Rng rng(7);
  net.initialize(rng);
  net.freeze_for_inference();
  const auto conv_pack = conv_at(net, 0).prepacked();
  const auto fc_pack = fc_at(net, 3).prepacked();
  net.freeze_for_inference();
  EXPECT_EQ(conv_at(net, 0).prepacked().get(), conv_pack.get())
      << "a second freeze re-packed unchanged conv weights";
  EXPECT_EQ(fc_at(net, 3).prepacked().get(), fc_pack.get())
      << "a second freeze re-packed unchanged FC weights";
}

TEST(PrepackLifecycle, SetTrainingInvalidatesPacks) {
  Network net = blocked_net();
  Rng rng(7);
  net.initialize(rng);
  net.freeze_for_inference();
  ASSERT_NE(conv_at(net, 0).prepacked(), nullptr);
  ASSERT_NE(fc_at(net, 3).prepacked(), nullptr);

  net.set_training(true);  // weights may change: packs must not survive
  EXPECT_EQ(conv_at(net, 0).prepacked(), nullptr);
  EXPECT_EQ(fc_at(net, 3).prepacked(), nullptr);

  // Re-freezing after the round trip restores the packed path and the
  // forward stays bit-identical to the staged result.
  const Tensor in = blocked_input(8, 22);
  net.set_training(false);
  const Tensor staged = net.forward(in);
  net.freeze_for_inference();
  ASSERT_NE(conv_at(net, 0).prepacked(), nullptr);
  EXPECT_EQ(max_abs_diff(staged, net.forward(in)), 0.0);
}

TEST(PrepackLifecycle, SetStrategyDropsTheConvPack) {
  Network net = blocked_net();
  Rng rng(7);
  net.initialize(rng);
  net.freeze_for_inference();
  ASSERT_NE(conv_at(net, 0).prepacked(), nullptr);
  dynamic_cast<ConvLayer&>(net.layer(0))
      .set_strategy(conv::Strategy::kDirect);
  EXPECT_EQ(conv_at(net, 0).prepacked(), nullptr)
      << "an engine swap kept a pack laid out for the old engine";
}

TEST(PrepackLifecycle, ShareParametersAliasesOnePackedCopy) {
  Network owner = blocked_net();
  Rng rng(7);
  owner.initialize(rng);
  owner.freeze_for_inference();

  Network sharer = blocked_net();
  sharer.set_training(false);
  sharer.share_parameters(owner);

  // Pointer equality: the sharer adopted the owner's panels rather
  // than packing its own copy of the (shared) weights.
  EXPECT_EQ(conv_at(sharer, 0).prepacked().get(),
            conv_at(owner, 0).prepacked().get());
  EXPECT_EQ(fc_at(sharer, 3).prepacked().get(),
            fc_at(owner, 3).prepacked().get());

  const Tensor in = blocked_input(8, 23);
  const Tensor a = owner.forward(in);
  EXPECT_EQ(max_abs_diff(a, sharer.forward(in)), 0.0);
}

TEST(PrepackLifecycle, ConcurrentForwardsOverSharedPacksAgree) {
  Network owner = blocked_net();
  Rng rng(7);
  owner.initialize(rng);
  owner.freeze_for_inference();

  const Tensor in = blocked_input(8, 24);
  const Tensor expected = owner.forward(in);

  constexpr std::size_t kReaders = 4;
  std::vector<std::unique_ptr<Network>> readers;
  for (std::size_t i = 0; i < kReaders; ++i) {
    auto net = std::make_unique<Network>(blocked_net());
    net->set_training(false);
    net->share_parameters(owner);
    readers.push_back(std::move(net));
  }

  std::vector<Tensor> outputs(kReaders);
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (std::size_t i = 0; i < kReaders; ++i) {
    threads.emplace_back([&, i] {
      for (int pass = 0; pass < 3; ++pass) {
        outputs[i] = readers[i]->forward(in);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kReaders; ++i) {
    EXPECT_EQ(max_abs_diff(expected, outputs[i]), 0.0)
        << "reader " << i << " diverged over the shared packs";
  }
}

}  // namespace
}  // namespace gpucnn::nn
