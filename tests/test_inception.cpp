// InceptionLayer: branch/concat semantics, gradients, and the executable
// GoogLeNet.
#include "nn/inception_layer.hpp"

#include <gtest/gtest.h>

#include "nn/model_spec.hpp"

namespace gpucnn::nn {
namespace {

InceptionParams tiny_params() {
  return {"tiny", /*c1=*/2, /*c3_reduce=*/2, /*c3=*/3, /*c5_reduce=*/1,
          /*c5=*/2, /*pool_proj=*/1};
}

TEST(Inception, OutputShapeConcatenatesBranches) {
  InceptionLayer layer("inc", /*in_channels=*/4, /*spatial=*/8,
                       tiny_params());
  EXPECT_EQ(layer.output_shape({2, 4, 8, 8}), (TensorShape{2, 8, 8, 8}));
  EXPECT_THROW((void)layer.output_shape({2, 5, 8, 8}), Error);
  EXPECT_THROW((void)layer.output_shape({2, 4, 9, 9}), Error);
}

TEST(Inception, ForwardPreservesSpatialSize) {
  InceptionLayer layer("inc", 4, 8, tiny_params());
  Rng rng(1);
  layer.initialize(rng);
  Tensor in(2, 4, 8, 8);
  in.fill_uniform(rng);
  Tensor out;
  layer.forward(in, out);
  EXPECT_EQ(out.shape(), (TensorShape{2, 8, 8, 8}));
}

TEST(Inception, ParameterCountMatchesBranchArithmetic) {
  const auto p = tiny_params();
  InceptionLayer layer("inc", 4, 8, p);
  std::size_t weights = 0;
  for (Tensor* t : layer.parameters()) weights += t->count();
  // 1x1: 2*4*1*1+2 ; 3x3: 2*4+2 + 3*2*9+3 ; 5x5: 1*4+1 + 2*1*25+2 ;
  // pool: 1*4+1.
  const std::size_t want = (2 * 4 + 2) + (2 * 4 + 2) + (3 * 2 * 9 + 3) +
                           (1 * 4 + 1) + (2 * 1 * 25 + 2) + (1 * 4 + 1);
  EXPECT_EQ(weights, want);
  EXPECT_EQ(layer.parameters().size(), layer.gradients().size());
}

TEST(Inception, GradcheckThroughAllBranches) {
  InceptionLayer layer("inc", 3, 6, tiny_params());
  Rng rng(2);
  layer.initialize(rng);
  Tensor in(1, 3, 6, 6);
  in.fill_uniform(rng, 0.1F, 1.0F);  // stay off ReLU kinks

  Tensor out;
  layer.forward(in, out);
  Tensor loss_w(out.shape());
  loss_w.fill_uniform(rng);

  layer.forward(in, out);
  Tensor grad_in;
  layer.backward(in, loss_w, grad_in);

  const auto loss = [&] {
    layer.forward(in, out);
    double acc = 0.0;
    for (std::size_t i = 0; i < out.count(); ++i) {
      acc += static_cast<double>(out.data()[i]) * loss_w.data()[i];
    }
    return acc;
  };
  const float eps = 1e-2F;
  for (const std::size_t idx : {0UL, in.count() / 2, in.count() - 1}) {
    const float saved = in.data()[idx];
    in.data()[idx] = saved + eps;
    const double up = loss();
    in.data()[idx] = saved - eps;
    const double down = loss();
    in.data()[idx] = saved;
    EXPECT_NEAR(grad_in.data()[idx], (up - down) / (2.0 * eps), 2e-2)
        << "index " << idx;
  }
}

TEST(Inception, GoogLeNetTableMatchesPaperChannels) {
  const auto modules = googlenet_inceptions();
  ASSERT_EQ(modules.size(), 9U);
  EXPECT_EQ(modules[0].output_channels(), 256U);   // 3a
  EXPECT_EQ(modules[1].output_channels(), 480U);   // 3b
  EXPECT_EQ(modules[6].output_channels(), 832U);   // 4e
  EXPECT_EQ(modules[8].output_channels(), 1024U);  // 5b
}

TEST(Inception, ExecutableGoogLeNetShapeChains) {
  auto net = googlenet_network();
  EXPECT_EQ(net.output_shape({1, 3, 224, 224}),
            (TensorShape{1, 1000, 1, 1}));
}

TEST(Inception, ExecutableGoogLeNetForwardProducesProbabilities) {
  auto net = googlenet_network();
  Rng rng(3);
  net.initialize(rng);
  net.set_training(false);
  Tensor in(1, 3, 224, 224);
  in.fill_uniform(rng);
  const Tensor& probs = net.forward(in);
  double sum = 0.0;
  for (std::size_t c = 0; c < 1000; ++c) sum += probs(0, c, 0, 0);
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

}  // namespace
}  // namespace gpucnn::nn
