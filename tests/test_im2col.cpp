#include "conv/im2col.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"

namespace gpucnn::conv {
namespace {

TEST(Im2col, BufferSizeFormula) {
  const ConvConfig cfg{.batch = 1, .input = 5, .channels = 2, .filters = 1,
                       .kernel = 3, .stride = 1};
  // CKK x OhOw = (2*9) x (3*3)
  EXPECT_EQ(col_buffer_size(cfg), 18U * 9U);
}

TEST(Im2col, IdentityKernelCopiesInput) {
  // k=1, s=1, p=0: the column matrix is exactly the input.
  const ConvConfig cfg{.batch = 1, .input = 4, .channels = 3, .filters = 1,
                       .kernel = 1, .stride = 1};
  Rng rng(1);
  std::vector<float> input(3 * 16);
  for (auto& v : input) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> col(col_buffer_size(cfg));
  im2col(cfg, input, col);
  EXPECT_EQ(col, input);
}

TEST(Im2col, HandComputedThreeByThree) {
  // 1 channel, 3x3 input, 2x2 kernel, stride 1 -> 2x2 outputs.
  const ConvConfig cfg{.batch = 1, .input = 3, .channels = 1, .filters = 1,
                       .kernel = 2, .stride = 1};
  const std::vector<float> input{1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> col(col_buffer_size(cfg));
  im2col(cfg, input, col);
  // Row layout: (ky,kx) major, output position minor.
  const std::vector<float> want{
      1, 2, 4, 5,   // (0,0)
      2, 3, 5, 6,   // (0,1)
      4, 5, 7, 8,   // (1,0)
      5, 6, 8, 9};  // (1,1)
  EXPECT_EQ(col, want);
}

TEST(Im2col, ZeroPaddingInsertsZeros) {
  const ConvConfig cfg{.batch = 1, .input = 2, .channels = 1, .filters = 1,
                       .kernel = 3, .stride = 1, .pad = 1};
  const std::vector<float> input{1, 2, 3, 4};
  std::vector<float> col(col_buffer_size(cfg));
  im2col(cfg, input, col);
  // Output is 2x2. Row (ky=0,kx=0) reads input at (y-1, x-1):
  // positions (0,0)->pad, (0,1)->pad, (1,0)->pad, (1,1)->input(0,0)=1.
  EXPECT_EQ(col[0], 0.0F);
  EXPECT_EQ(col[1], 0.0F);
  EXPECT_EQ(col[2], 0.0F);
  EXPECT_EQ(col[3], 1.0F);
  // Centre row (ky=1,kx=1) is the input itself.
  const std::size_t centre = (1 * 3 + 1) * 4;
  EXPECT_EQ(col[centre + 0], 1.0F);
  EXPECT_EQ(col[centre + 1], 2.0F);
  EXPECT_EQ(col[centre + 2], 3.0F);
  EXPECT_EQ(col[centre + 3], 4.0F);
}

TEST(Im2col, StrideSkipsPositions) {
  const ConvConfig cfg{.batch = 1, .input = 5, .channels = 1, .filters = 1,
                       .kernel = 3, .stride = 2};
  std::vector<float> input(25);
  for (std::size_t i = 0; i < 25; ++i) input[i] = static_cast<float>(i);
  std::vector<float> col(col_buffer_size(cfg));
  im2col(cfg, input, col);
  // o = 2. Row (0,0): input(0,0)=0, input(0,2)=2, input(2,0)=10, input(2,2)=12.
  EXPECT_EQ(col[0], 0.0F);
  EXPECT_EQ(col[1], 2.0F);
  EXPECT_EQ(col[2], 10.0F);
  EXPECT_EQ(col[3], 12.0F);
}

TEST(Im2col, SizeValidation) {
  const ConvConfig cfg{.batch = 1, .input = 4, .channels = 1, .filters = 1,
                       .kernel = 2, .stride = 1};
  std::vector<float> input(15);  // wrong: should be 16
  std::vector<float> col(col_buffer_size(cfg));
  EXPECT_THROW(im2col(cfg, input, col), Error);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y: the defining
  // property of an adjoint pair, which backward-data correctness rests on.
  const ConvConfig cfg{.batch = 1, .input = 6, .channels = 2, .filters = 1,
                       .kernel = 3, .stride = 2, .pad = 1};
  Rng rng(7);
  const std::size_t in_elems = cfg.channels * cfg.input * cfg.input;
  std::vector<float> x(in_elems);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> y(col_buffer_size(cfg));
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> col(col_buffer_size(cfg));
  im2col(cfg, x, col);
  double lhs = 0.0;
  for (std::size_t i = 0; i < col.size(); ++i) {
    lhs += static_cast<double>(col[i]) * y[i];
  }

  std::vector<float> back(in_elems, 0.0F);
  col2im(cfg, y, back);
  double rhs = 0.0;
  for (std::size_t i = 0; i < back.size(); ++i) {
    rhs += static_cast<double>(back[i]) * x[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-4 * (std::abs(lhs) + 1.0));
}

TEST(Col2im, AccumulatesOverlaps) {
  // 3x3 input, 2x2 kernel, stride 1: centre pixel (1,1) appears in all
  // four windows; a col buffer of ones must scatter 4 into it.
  const ConvConfig cfg{.batch = 1, .input = 3, .channels = 1, .filters = 1,
                       .kernel = 2, .stride = 1};
  std::vector<float> col(col_buffer_size(cfg), 1.0F);
  std::vector<float> image(9, 0.0F);
  col2im(cfg, col, image);
  EXPECT_EQ(image[4], 4.0F);  // centre
  EXPECT_EQ(image[0], 1.0F);  // corner appears once
  EXPECT_EQ(image[1], 2.0F);  // edge appears twice
}

TEST(Col2im, RoundTripWithoutOverlapIsIdentity) {
  // Non-overlapping windows (k == s): col2im(im2col(x)) == x.
  const ConvConfig cfg{.batch = 1, .input = 6, .channels = 2, .filters = 1,
                       .kernel = 2, .stride = 2};
  Rng rng(3);
  std::vector<float> x(2 * 36);
  for (auto& v : x) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  std::vector<float> col(col_buffer_size(cfg));
  im2col(cfg, x, col);
  std::vector<float> back(x.size(), 0.0F);
  col2im(cfg, col, back);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(back[i], x[i]);
}

}  // namespace
}  // namespace gpucnn::conv
