// Serving runtime: batching policy edge cases, shutdown draining,
// concurrent submitters, weight sharing and the latency summary math.
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/activation_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/model_spec.hpp"
#include "nn/network.hpp"
#include "serve/latency.hpp"
#include "serve/model_instance.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"

namespace gpucnn::serve {
namespace {

using namespace std::chrono_literals;

Tensor image(std::size_t c, std::size_t h, std::size_t w, float value) {
  Tensor t(1, c, h, w);
  t.fill(value);
  return t;
}

/// A tiny deterministic model: one FC layer over a 4-element input.
nn::Network tiny_network() {
  nn::Network net;
  net.emplace<nn::FcLayer>("fc", /*in=*/4, /*out=*/3);
  net.emplace<nn::ActivationLayer>("relu", nn::Activation::kRelu);
  return net;
}

ServerOptions tiny_options() {
  ServerOptions opts;
  opts.workers = 2;
  opts.batch = {.max_batch = 4, .max_delay_us = 1000};
  opts.input = {1, 1, 2, 2};
  opts.memory_planning = true;
  return opts;
}

// ---------------------------------------------------------------- queue

TEST(RequestQueue, BatchClosesOnSizeBeforeDeadline) {
  // A day-long latency budget: only the size trigger can close a batch
  // promptly, so a fast collect proves the size path.
  RequestQueue queue({.max_batch = 4, .max_delay_us = 86'400'000'000LL});
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(queue.submit(image(1, 2, 2, static_cast<float>(i))));
  }
  std::vector<Request> batch;
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(queue.collect(batch));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch.size(), 4U);
  EXPECT_LT(elapsed, 10s);  // far below the (absurd) deadline
  EXPECT_EQ(queue.depth(), 0U);
}

TEST(RequestQueue, SizeTriggerNeverOvershootsMaxBatch) {
  RequestQueue queue({.max_batch = 3, .max_delay_us = 86'400'000'000LL});
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(queue.submit(image(1, 2, 2, 0.0F)));
  }
  std::vector<Request> batch;
  ASSERT_TRUE(queue.collect(batch));
  EXPECT_EQ(batch.size(), 3U);
  ASSERT_TRUE(queue.collect(batch));
  EXPECT_EQ(batch.size(), 3U);
  // The 2 leftovers are below max_batch and their deadline is a day
  // out, so only close() releases them (as a final short batch).
  queue.close();
  ASSERT_TRUE(queue.collect(batch));
  EXPECT_EQ(batch.size(), 2U);
  EXPECT_EQ(queue.depth(), 0U);
}

TEST(RequestQueue, DeadlineFiresWithSingleRequest) {
  RequestQueue queue({.max_batch = 64, .max_delay_us = 5000});
  auto future = queue.submit(image(1, 2, 2, 1.0F));
  std::vector<Request> batch;
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(queue.collect(batch));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch.size(), 1U);
  // The batch must have waited out (approximately) the latency budget —
  // it cannot close instantly on size with 63 slots still free.
  EXPECT_GE(waited, 4ms);
}

TEST(RequestQueue, CollectBlocksUntilCloseOnEmptyQueue) {
  RequestQueue queue({.max_batch = 4, .max_delay_us = 100});
  std::atomic<bool> returned{false};
  std::thread collector([&] {
    std::vector<Request> batch;
    EXPECT_FALSE(queue.collect(batch));
    EXPECT_TRUE(batch.empty());
    returned = true;
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(returned.load());  // empty + open: collect must block
  queue.close();
  collector.join();
  EXPECT_TRUE(returned.load());
}

TEST(RequestQueue, ShutdownDrainsInFlightRequests) {
  RequestQueue queue({.max_batch = 4, .max_delay_us = 86'400'000'000LL});
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 10; ++i) {  // not a multiple of max_batch
    futures.push_back(queue.submit(image(1, 2, 2, 0.0F)));
  }
  queue.close();
  std::size_t drained = 0;
  std::vector<Request> batch;
  while (queue.collect(batch)) {
    EXPECT_LE(batch.size(), 4U);
    drained += batch.size();
  }
  EXPECT_EQ(drained, 10U);
  EXPECT_EQ(queue.depth(), 0U);
}

TEST(RequestQueue, SubmitAfterCloseThrows) {
  RequestQueue queue({.max_batch = 2, .max_delay_us = 100});
  queue.close();
  EXPECT_THROW((void)queue.submit(image(1, 2, 2, 0.0F)), Error);
}

TEST(RequestQueue, ConcurrentCollectorsPartitionTheQueue) {
  RequestQueue queue({.max_batch = 8, .max_delay_us = 500});
  constexpr int kRequests = 200;
  std::atomic<std::size_t> collected{0};
  std::vector<std::thread> collectors;
  for (int t = 0; t < 3; ++t) {
    collectors.emplace_back([&] {
      std::vector<Request> batch;
      while (queue.collect(batch)) collected += batch.size();
    });
  }
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(queue.submit(image(1, 2, 2, 0.0F)));
  }
  queue.close();
  for (auto& c : collectors) c.join();
  EXPECT_EQ(collected.load(), static_cast<std::size_t>(kRequests));
  EXPECT_EQ(queue.depth(), 0U);
}

// --------------------------------------------------------------- server

TEST(InferenceServer, RespondsAndMatchesPrototypeReference) {
  InferenceServer server(tiny_network, tiny_options());
  std::vector<std::future<Tensor>> futures;
  std::vector<Tensor> inputs;
  for (int i = 0; i < 12; ++i) {
    inputs.push_back(image(1, 2, 2, 0.25F * static_cast<float>(i - 4)));
    futures.push_back(server.submit(inputs.back()));
  }
  std::vector<Tensor> responses;
  for (auto& f : futures) responses.push_back(f.get());
  server.shutdown();

  // Each response must equal the prototype's single-image forward on
  // that exact input: proves no request was mixed up, lost or batched
  // into the wrong row.
  for (std::size_t i = 0; i < responses.size(); ++i) {
    const Tensor& expected = server.prototype().forward(inputs[i]);
    EXPECT_LE(max_abs_diff(responses[i], expected), 1e-5)
        << "response " << i << " does not match its input's reference";
  }
}

TEST(InferenceServer, ConcurrentSubmittersNeverLoseOrDuplicate) {
  ServerOptions opts = tiny_options();
  opts.workers = 3;
  opts.batch = {.max_batch = 5, .max_delay_us = 200};
  InferenceServer server(tiny_network, opts);

  constexpr int kThreads = 6;
  constexpr int kPerThread = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // A value unique to (thread, index): a response computed from a
        // different request's input cannot match its own reference.
        const float v = static_cast<float>(t * kPerThread + i) * 0.01F;
        const Tensor in = image(1, 2, 2, v);
        Tensor out = server.submit(in).get();
        nn::Network reference = tiny_network();
        // Weights are deterministic functions of the seed; rebuild and
        // share against the server's prototype for an aligned copy.
        reference.set_training(false);
        reference.share_parameters(server.prototype());
        if (max_abs_diff(out, reference.forward(in)) > 1e-5) ++mismatches;
      }
    });
  }
  for (auto& s : submitters) s.join();
  server.shutdown();

  EXPECT_EQ(mismatches.load(), 0);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, kThreads * kPerThread);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_EQ(stats.queue_depth, 0U);
  EXPECT_EQ(static_cast<std::size_t>(stats.latency.count),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_GE(stats.batches, (kThreads * kPerThread + 4) / 5);
}

TEST(InferenceServer, ShutdownDrainsThenRejects) {
  ServerOptions opts = tiny_options();
  opts.batch = {.max_batch = 64, .max_delay_us = 50'000};
  InferenceServer server(tiny_network, opts);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 7; ++i) {
    futures.push_back(server.submit(image(1, 2, 2, 1.0F)));
  }
  server.shutdown();  // drains the 7 queued requests before joining
  for (auto& f : futures) EXPECT_NO_THROW((void)f.get());
  EXPECT_THROW((void)server.submit(image(1, 2, 2, 0.0F)), Error);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.completed, 7);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.queue_depth, 0U);
}

TEST(InferenceServer, RejectsWrongInputShape) {
  InferenceServer server(tiny_network, tiny_options());
  EXPECT_THROW((void)server.submit(Tensor(1, 3, 2, 2)), Error);
  EXPECT_THROW((void)server.submit(Tensor(2, 1, 2, 2)), Error);
  server.shutdown();
}

TEST(InferenceServer, ServesModelZooLeNetBatched) {
  ServerOptions opts;
  opts.workers = 2;
  opts.batch = {.max_batch = 8, .max_delay_us = 2000};
  opts.input = {1, 1, 32, 32};
  InferenceServer server([] { return nn::lenet5(1).instantiate(); }, opts);
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(
        server.submit(image(1, 32, 32, 0.1F * static_cast<float>(i))));
  }
  for (auto& f : futures) {
    const Tensor out = f.get();
    EXPECT_EQ(out.shape(), (TensorShape{1, 10, 1, 1}));
    // Softmax output: probabilities sum to ~1.
    EXPECT_NEAR(out.sum(), 1.0, 1e-4);
  }
  server.shutdown();
  EXPECT_GE(server.stats().max_batch_observed, 1U);
}

// ------------------------------------------------------ weight sharing

TEST(ShareParameters, BindsViewsOverOwnerStorage) {
  nn::Network owner = tiny_network();
  Rng rng(3);
  owner.initialize(rng);
  nn::Network sharer = tiny_network();
  sharer.share_parameters(owner);

  const auto owner_params = owner.parameters();
  const auto shared_params = sharer.parameters();
  ASSERT_EQ(owner_params.size(), shared_params.size());
  for (std::size_t i = 0; i < owner_params.size(); ++i) {
    EXPECT_TRUE(shared_params[i]->is_view());
    EXPECT_EQ(shared_params[i]->raw(), owner_params[i]->raw())
        << "parameter " << i << " was copied, not shared";
  }

  // Identical outputs without ever initialising the sharer.
  const Tensor in = image(1, 2, 2, 0.5F);
  Tensor a = owner.forward(in);
  const Tensor& b = sharer.forward(in);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
}

TEST(ShareParameters, RejectsStructurallyDifferentNetworks) {
  nn::Network owner = tiny_network();
  Rng rng(3);
  owner.initialize(rng);
  nn::Network other;
  other.emplace<nn::FcLayer>("fc", 4, 5);
  EXPECT_THROW(other.share_parameters(owner), Error);
}

TEST(ModelInstance, RunsPlannedForwardOverSharedWeights) {
  nn::Network owner = tiny_network();
  owner.set_training(false);
  Rng rng(11);
  owner.initialize(rng);
  ModelInstance instance(tiny_network(), owner, /*memory_planning=*/true);
  Tensor batch(3, 1, 2, 2);
  batch.fill(0.5F);
  const Tensor& out = instance.run(batch);
  EXPECT_EQ(out.shape().n, 3U);
  EXPECT_EQ(instance.batches_run(), 1U);
  // Planned forward: the instance's network reports arena savings.
  EXPECT_GT(instance.network().planned_activation_bytes(), 0U);
}

// ----------------------------------------------------------- latencies

TEST(LatencySummary, NearestRankPercentiles) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const LatencySummary s = summarize_latencies(samples);
  EXPECT_EQ(s.count, 100U);
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(s.p95_us, 95.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(s.max_us, 100.0);
  EXPECT_DOUBLE_EQ(s.mean_us, 50.5);
}

TEST(LatencySummary, EmptyAndSingle) {
  EXPECT_EQ(summarize_latencies({}).count, 0U);
  const LatencySummary s = summarize_latencies({42.0});
  EXPECT_EQ(s.count, 1U);
  EXPECT_DOUBLE_EQ(s.p50_us, 42.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 42.0);
}

TEST(LatencyRecorder, TakeDrainsSamples) {
  LatencyRecorder recorder;
  recorder.record(1.0);
  recorder.record(2.0);
  EXPECT_EQ(recorder.count(), 2U);
  const auto taken = recorder.take();
  EXPECT_EQ(taken.size(), 2U);
  EXPECT_EQ(recorder.count(), 0U);
  EXPECT_EQ(recorder.summary().count, 0U);
}

}  // namespace
}  // namespace gpucnn::serve
