// The conv-config fuzzer as a test: a fixed-seed smoke batch must pass
// with zero cross-engine mismatches and zero invariant violations, and
// the generator itself must stay deterministic and adversarial (the
// repro workflow depends on both). The full 200-config smoke run lives
// in CI as `tools/conv_fuzz --seed 1 --count 200`; see docs/TESTING.md.
#include "analysis/conv_fuzz.hpp"

#include <gtest/gtest.h>

#include <set>

namespace gpucnn::analysis {
namespace {

TEST(ConvFuzz, SeededSmokeBatchFindsNoFailures) {
  FuzzOptions options;
  options.seed = 1;
  options.count = 40;  // CI's standalone run covers 200; keep ctest fast
  options.tune_cache = true;
  options.tune_cache_path = testing::TempDir() + "fuzz_tune_cache.json";
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.configs_run, options.count);
  EXPECT_GT(report.engine_checks, 0U);
  EXPECT_GT(report.plan_checks, 0U);
  EXPECT_EQ(report.fused_checks, options.count);
  EXPECT_EQ(report.tune_checks, options.count);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << '[' << failure.index << "] "
                  << failure.config.to_string() << ": " << failure.what
                  << "\n  repro: " << repro_command(options.seed,
                                                    failure.index);
  }
}

TEST(ConvFuzz, Int8BatchFindsNoFailures) {
  // 40 adversarial configs through the int8-vs-fp32 cross-check. The
  // fused and tune-cache checks already ran in the smoke batch above,
  // so this batch leaves them off.
  FuzzOptions options;
  options.seed = 1;
  options.count = 40;
  options.fused = false;
  options.int8 = true;
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.configs_run, options.count);
  // Every config gets the two unrolling-int8 variants; groups == 1
  // configs add the two implicit-int8 ones.
  EXPECT_GE(report.int8_checks, 2 * options.count);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << '[' << failure.index << "] "
                  << failure.config.to_string() << ": " << failure.what
                  << "\n  repro: "
                  << repro_command(options.seed, failure.index)
                  << " --int8";
  }
}

TEST(ConvFuzz, PrepackBatchFindsNoFailures) {
  // 40 adversarial configs through the prepacked-vs-staged bit-identity
  // cross-check (fp32 gemm/implicit plus both int8 paths).
  FuzzOptions options;
  options.seed = 1;
  options.count = 40;
  options.fused = false;
  options.prepack = true;
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.configs_run, options.count);
  // Every config gets the two unrolling variants in fp32 and int8;
  // groups == 1 configs add the four implicit ones.
  EXPECT_GE(report.prepack_checks, 4 * options.count);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << '[' << failure.index << "] "
                  << failure.config.to_string() << ": " << failure.what
                  << "\n  repro: "
                  << repro_command(options.seed, failure.index)
                  << " --prepack";
  }
}

TEST(ConvFuzz, WinogradBatchFindsNoFailures) {
  // 40 Winograd-eligible configs (k = 3, s = 1, pads 0–2, tile-edge
  // adversarial) through the full engine cross-check — both Winograd
  // tile sizes run against direct on all three passes — plus the
  // prepacked bit-identity check.
  FuzzOptions options;
  options.seed = 1;
  options.count = 40;
  options.fused = false;
  options.winograd = true;
  options.prepack = true;
  const FuzzReport report = run_fuzz(options);
  EXPECT_EQ(report.configs_run, options.count);
  // Every config is Winograd-eligible, so both tile sizes check all
  // three passes on every config: at least 6 winograd comparisons each.
  EXPECT_GE(report.engine_checks, 6 * options.count);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << '[' << failure.index << "] "
                  << failure.config.to_string() << ": " << failure.what
                  << "\n  repro: "
                  << repro_command(options.seed, failure.index,
                                   /*depthwise=*/false, /*winograd=*/true)
                  << " --prepack";
  }
}

TEST(ConvFuzz, ConfigIsAPureFunctionOfSeedAndIndex) {
  // Identical across calls, and independent of which other indices were
  // generated before — the property --start repro relies on.
  const ConvConfig a = fuzz_config(7, 123);
  (void)fuzz_config(7, 5);
  (void)fuzz_config(9, 123);
  const ConvConfig b = fuzz_config(7, 123);
  EXPECT_EQ(a, b);
  EXPECT_NE(fuzz_config(8, 123), a);  // seed actually participates
}

TEST(ConvFuzz, GeneratorCoversTheAdversarialFamilies) {
  bool stride_exceeds_kernel = false;
  bool pad_reaches_kernel = false;
  bool single_channel = false;
  bool single_image = false;
  bool grouped = false;
  bool depthwise = false;
  bool depthwise_multiplier = false;
  bool input_at_most_kernel = false;
  std::set<std::size_t> inputs;
  for (std::size_t i = 0; i < 500; ++i) {
    const ConvConfig cfg = fuzz_config(1, i);
    ASSERT_NO_THROW((void)cfg.output()) << "invalid geometry at index " << i;
    stride_exceeds_kernel |= cfg.stride > cfg.kernel;
    pad_reaches_kernel |= cfg.pad >= cfg.kernel;
    single_channel |= cfg.channels == 1;
    single_image |= cfg.batch == 1;
    grouped |= cfg.groups > 1;
    const bool dw = cfg.groups > 1 && cfg.groups == cfg.channels;
    depthwise |= dw;
    depthwise_multiplier |= dw && cfg.group_filters() > 1;
    input_at_most_kernel |= cfg.input <= cfg.kernel;
    inputs.insert(cfg.input);
  }
  EXPECT_TRUE(stride_exceeds_kernel);
  EXPECT_TRUE(pad_reaches_kernel);
  EXPECT_TRUE(single_channel);
  EXPECT_TRUE(single_image);
  EXPECT_TRUE(grouped);
  EXPECT_TRUE(depthwise);
  EXPECT_TRUE(depthwise_multiplier);
  EXPECT_TRUE(input_at_most_kernel);
  // Non-power-of-two sizes around the FFT padding boundaries appear.
  EXPECT_TRUE(inputs.contains(17) || inputs.contains(33));
  EXPECT_GT(inputs.size(), 8U);
}

TEST(ConvFuzz, ReproCommandPinsOneConfig) {
  EXPECT_EQ(repro_command(42, 17),
            "tools/conv_fuzz --seed 42 --start 17 --count 1");
  EXPECT_EQ(repro_command(42, 17, /*depthwise=*/true),
            "tools/conv_fuzz --seed 42 --start 17 --count 1 --depthwise");
  EXPECT_EQ(repro_command(42, 17, /*depthwise=*/false, /*winograd=*/true),
            "tools/conv_fuzz --seed 42 --start 17 --count 1 --winograd");
}

TEST(ConvFuzz, WinogradGeneratorStaysEligibleAndAdversarial) {
  // Every config from the winograd generator must be in the family both
  // WinogradConv tile sizes own (k = 3, s = 1, pad <= 2, ungrouped),
  // and the sequence must cover the adversarial sub-families: all three
  // pads, C = 1 / F = 1 degenerates, inputs smaller than one tile, and
  // odd output sizes whose final tile overhangs the padded edge for
  // both tile sizes.
  bool pad0 = false;
  bool pad1 = false;
  bool pad2 = false;
  bool single_channel = false;
  bool single_filter = false;
  bool below_tile = false;    // input < 4, smaller than even an F2 tile
  bool f2_overhang = false;   // output % 2 != 0
  bool f4_overhang = false;   // output % 4 != 0
  for (std::size_t i = 0; i < 300; ++i) {
    const ConvConfig cfg = fuzz_winograd_config(1, i);
    ASSERT_NO_THROW((void)cfg.output()) << "invalid geometry at index " << i;
    ASSERT_EQ(cfg.kernel, 3U) << "not 3x3 at index " << i;
    ASSERT_EQ(cfg.stride, 1U) << "not stride-1 at index " << i;
    ASSERT_LE(cfg.pad, 2U) << "pad beyond the supported range at " << i;
    ASSERT_EQ(cfg.groups, 1U) << "grouped at index " << i;
    pad0 |= cfg.pad == 0;
    pad1 |= cfg.pad == 1;
    pad2 |= cfg.pad == 2;
    single_channel |= cfg.channels == 1;
    single_filter |= cfg.filters == 1;
    below_tile |= cfg.input < 4;
    f2_overhang |= cfg.output() % 2 != 0;
    f4_overhang |= cfg.output() % 4 != 0;
  }
  EXPECT_TRUE(pad0);
  EXPECT_TRUE(pad1);
  EXPECT_TRUE(pad2);
  EXPECT_TRUE(single_channel);
  EXPECT_TRUE(single_filter);
  EXPECT_TRUE(below_tile);
  EXPECT_TRUE(f2_overhang);
  EXPECT_TRUE(f4_overhang);

  // Pure function of (seed, index), like the other generators.
  const ConvConfig a = fuzz_winograd_config(7, 42);
  (void)fuzz_winograd_config(7, 1);
  EXPECT_EQ(a, fuzz_winograd_config(7, 42));
}

TEST(ConvFuzz, DepthwiseGeneratorStaysDegenerateAndAdversarial) {
  // Every config from the depthwise generator must be in the family the
  // DepthwiseConv engine owns (channels == groups), and the sequence
  // must still cover the adversarial sub-families: channel multipliers,
  // strides past the kernel, halo-only padding, 1x1 kernels.
  bool multiplier = false;
  bool wide = false;  // groups >= 16 exercises the SIMD row kernels
  bool stride_exceeds_kernel = false;
  bool pad_reaches_kernel = false;
  bool pointwise = false;
  for (std::size_t i = 0; i < 300; ++i) {
    const ConvConfig cfg = fuzz_depthwise_config(1, i);
    ASSERT_NO_THROW((void)cfg.output()) << "invalid geometry at index " << i;
    ASSERT_EQ(cfg.channels, cfg.groups) << "not depthwise at index " << i;
    ASSERT_EQ(cfg.filters % cfg.groups, 0U);
    multiplier |= cfg.group_filters() > 1;
    wide |= cfg.groups >= 16;
    stride_exceeds_kernel |= cfg.stride > cfg.kernel;
    pad_reaches_kernel |= cfg.pad >= cfg.kernel;
    pointwise |= cfg.kernel == 1;
  }
  EXPECT_TRUE(multiplier);
  EXPECT_TRUE(wide);
  EXPECT_TRUE(stride_exceeds_kernel);
  EXPECT_TRUE(pad_reaches_kernel);
  EXPECT_TRUE(pointwise);

  // Pure function of (seed, index), like the main generator.
  const ConvConfig a = fuzz_depthwise_config(7, 42);
  (void)fuzz_depthwise_config(7, 1);
  EXPECT_EQ(a, fuzz_depthwise_config(7, 42));
}

TEST(ConvFuzz, StartOffsetReproducesTheSameFailurelessSlice) {
  // Checking [10, 13) alone equals checking it as part of [0, 20):
  // the report counters for that slice must match.
  FuzzOptions slice;
  slice.seed = 3;
  slice.start = 10;
  slice.count = 3;
  const FuzzReport a = run_fuzz(slice);
  const FuzzReport b = run_fuzz(slice);
  EXPECT_EQ(a.engine_checks, b.engine_checks);
  EXPECT_EQ(a.engine_skips, b.engine_skips);
  EXPECT_EQ(a.plan_checks, b.plan_checks);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

}  // namespace
}  // namespace gpucnn::analysis
