// Cross-strategy agreement: the paper's three convolution strategies
// compute the same mathematical operator, so our three engines must agree
// on every pass across a sweep of geometries. DirectConv is the oracle
// (validated against hand computations and finite differences in
// test_direct_conv.cpp).
#include <gtest/gtest.h>

#include <memory>

#include "conv/conv_engine.hpp"
#include "core/rng.hpp"

namespace gpucnn::conv {
namespace {

struct AgreementCase {
  ConvConfig cfg;
  const char* label;
};

std::ostream& operator<<(std::ostream& os, const AgreementCase& c) {
  return os << c.label;
}

class ConvAgreement : public ::testing::TestWithParam<AgreementCase> {
 protected:
  static double tolerance(const ConvConfig& cfg) {
    // FFT accumulates rounding over O(S^2 log S) operations; scale the
    // tolerance with problem size.
    const double scale =
        static_cast<double>(cfg.channels * cfg.kernel * cfg.kernel);
    return 1e-4 * (1.0 + scale * 0.02);
  }
};

TEST_P(ConvAgreement, ForwardAgreesAcrossStrategies) {
  const ConvConfig cfg = GetParam().cfg;
  Rng rng(101);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);

  const auto direct = make_engine(Strategy::kDirect);
  Tensor want(cfg.output_shape());
  direct->forward(cfg, input, filters, want);

  for (const Strategy s : {Strategy::kUnrolling, Strategy::kFft, Strategy::kWinograd}) {
    const auto engine = make_engine(s);
    if (!engine->supports(cfg)) continue;
    Tensor got(cfg.output_shape());
    engine->forward(cfg, input, filters, got);
    EXPECT_LT(max_abs_diff(want, got), tolerance(cfg))
        << "strategy " << to_string(s);
  }
}

TEST_P(ConvAgreement, BackwardDataAgreesAcrossStrategies) {
  const ConvConfig cfg = GetParam().cfg;
  Rng rng(202);
  Tensor grad_output(cfg.output_shape());
  grad_output.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);

  const auto direct = make_engine(Strategy::kDirect);
  Tensor want(cfg.input_shape());
  direct->backward_data(cfg, grad_output, filters, want);

  for (const Strategy s : {Strategy::kUnrolling, Strategy::kFft, Strategy::kWinograd}) {
    const auto engine = make_engine(s);
    if (!engine->supports(cfg)) continue;
    Tensor got(cfg.input_shape());
    engine->backward_data(cfg, grad_output, filters, got);
    EXPECT_LT(max_abs_diff(want, got), tolerance(cfg))
        << "strategy " << to_string(s);
  }
}

TEST_P(ConvAgreement, BackwardFilterAgreesAcrossStrategies) {
  const ConvConfig cfg = GetParam().cfg;
  Rng rng(303);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor grad_output(cfg.output_shape());
  grad_output.fill_uniform(rng);

  const auto direct = make_engine(Strategy::kDirect);
  Tensor want(cfg.filter_shape());
  direct->backward_filter(cfg, input, grad_output, want);

  // The filter gradient reduces over batch * o^2 terms; loosen
  // proportionally.
  const double tol =
      tolerance(cfg) *
      (1.0 + 0.05 * static_cast<double>(cfg.batch) *
                 static_cast<double>(cfg.output()));

  for (const Strategy s : {Strategy::kUnrolling, Strategy::kFft, Strategy::kWinograd}) {
    const auto engine = make_engine(s);
    if (!engine->supports(cfg)) continue;
    Tensor got(cfg.filter_shape());
    engine->backward_filter(cfg, input, grad_output, got);
    EXPECT_LT(max_abs_diff(want, got), tol) << "strategy " << to_string(s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvAgreement,
    ::testing::Values(
        AgreementCase{{.batch = 1, .input = 4, .channels = 1, .filters = 1,
                       .kernel = 1, .stride = 1},
                      "trivial_1x1"},
        AgreementCase{{.batch = 2, .input = 8, .channels = 3, .filters = 4,
                       .kernel = 3, .stride = 1},
                      "small_3x3"},
        AgreementCase{{.batch = 2, .input = 9, .channels = 2, .filters = 3,
                       .kernel = 4, .stride = 1},
                      "even_kernel"},
        AgreementCase{{.batch = 1, .input = 16, .channels = 2, .filters = 2,
                       .kernel = 5, .stride = 1, .pad = 2},
                      "same_padding"},
        AgreementCase{{.batch = 3, .input = 12, .channels = 4, .filters = 5,
                       .kernel = 3, .stride = 2},
                      "strided_no_fft"},
        AgreementCase{{.batch = 2, .input = 11, .channels = 3, .filters = 2,
                       .kernel = 3, .stride = 3, .pad = 1},
                      "stride3_pad"},
        AgreementCase{{.batch = 1, .input = 13, .channels = 2, .filters = 2,
                       .kernel = 13, .stride = 1},
                      "kernel_equals_input"},
        AgreementCase{{.batch = 2, .input = 10, .channels = 1, .filters = 1,
                       .kernel = 7, .stride = 1, .pad = 3},
                      "large_kernel_padded"},
        AgreementCase{{.batch = 4, .input = 6, .channels = 8, .filters = 8,
                       .kernel = 3, .stride = 1},
                      "deep_channels"},
        AgreementCase{{.batch = 1, .input = 32, .channels = 1, .filters = 1,
                       .kernel = 11, .stride = 1},
                      "paper_kernel_11"}));

TEST(FftConvLimits, RejectsStrideGreaterThanOne) {
  const ConvConfig cfg{.batch = 1, .input = 8, .channels = 1, .filters = 1,
                       .kernel = 3, .stride = 2};
  const auto engine = make_engine(Strategy::kFft);
  EXPECT_FALSE(engine->supports(cfg));
  Tensor input(cfg.input_shape());
  Tensor filters(cfg.filter_shape());
  Tensor output(cfg.output_shape());
  EXPECT_THROW(engine->forward(cfg, input, filters, output), Error);
}

TEST(EngineFactory, ProducesAllStrategies) {
  EXPECT_EQ(make_engine(Strategy::kDirect)->strategy(), Strategy::kDirect);
  EXPECT_EQ(make_engine(Strategy::kUnrolling)->strategy(),
            Strategy::kUnrolling);
  EXPECT_EQ(make_engine(Strategy::kFft)->strategy(), Strategy::kFft);
}

TEST(EngineFactory, NamesMatchStrategyStrings) {
  for (const Strategy s :
       {Strategy::kDirect, Strategy::kUnrolling, Strategy::kFft,
        Strategy::kWinograd}) {
    EXPECT_EQ(make_engine(s)->name(), to_string(s));
  }
}

}  // namespace
}  // namespace gpucnn::conv
