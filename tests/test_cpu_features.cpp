#include "core/cpu_features.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace gpucnn::simd {
namespace {

TEST(CpuFeatures, NamesAreStable) {
  // Exported in run manifests; renaming is a schema change.
  EXPECT_STREQ(name(Level::kPortable), "portable");
  EXPECT_STREQ(name(Level::kAvx2), "avx2");
}

TEST(CpuFeatures, ActiveNeverExceedsCpuCapability) {
  if (active() == Level::kAvx2) {
    EXPECT_TRUE(cpu_has_avx2());
  }
}

TEST(CpuFeatures, TestHookRoundTrips) {
  const Level original = active();
  const Level installed = set_active_for_testing(Level::kPortable);
  EXPECT_EQ(installed, Level::kPortable);
  EXPECT_EQ(active(), Level::kPortable);
  // Requesting AVX2 is clamped to what the CPU offers.
  const Level requested = set_active_for_testing(Level::kAvx2);
  if (cpu_has_avx2()) {
    EXPECT_EQ(requested, Level::kAvx2);
  } else {
    EXPECT_EQ(requested, Level::kPortable);
  }
  set_active_for_testing(original);
  EXPECT_EQ(active(), original);
}

}  // namespace
}  // namespace gpucnn::simd
