// Model zoo: architecture shapes and parameter counts against the
// paper's cited numbers.
#include <gtest/gtest.h>

#include "core/error.hpp"
#include "nn/model_spec.hpp"

namespace gpucnn::nn {
namespace {

const LayerSpec& find_layer(const ModelSpec& m, const std::string& name) {
  for (const auto& l : m.layers) {
    if (l.name == name) return l;
  }
  throw Error("layer not found: " + name);
}

TEST(ModelZoo, AlexNetMatchesPaperIntro) {
  // "AlexNet ... has 8 layers (5 convolutional layers and 3 fully-
  // connected layers) and more than 60 million parameters."
  const auto m = alexnet();
  EXPECT_EQ(m.count(LayerSpec::Kind::kConv), 5U);
  EXPECT_EQ(m.count(LayerSpec::Kind::kFc), 3U);
  EXPECT_GT(m.parameter_count(), 60e6);
  EXPECT_LT(m.parameter_count(), 65e6);
}

TEST(ModelZoo, AlexNetShapes) {
  const auto m = alexnet(128);
  EXPECT_EQ(find_layer(m, "conv1").output,
            (TensorShape{128, 96, 55, 55}));
  EXPECT_EQ(find_layer(m, "conv5").output,
            (TensorShape{128, 256, 13, 13}));
  EXPECT_EQ(find_layer(m, "fc6").fc_in, 256U * 6 * 6);
  EXPECT_EQ(m.layers.back().output.c, 1000U);
}

TEST(ModelZoo, Vgg19MatchesPaperIntro) {
  // "VGGNet has 19 layers (16 convolutional ... ) and over 144 million
  // parameters" — the canonical count is 143.7M; we require > 140M.
  const auto m = vgg19();
  EXPECT_EQ(m.count(LayerSpec::Kind::kConv), 16U);
  EXPECT_EQ(m.count(LayerSpec::Kind::kFc), 3U);
  EXPECT_GT(m.parameter_count(), 140e6);
}

TEST(ModelZoo, Vgg16Shapes) {
  const auto m = vgg16();
  EXPECT_EQ(m.count(LayerSpec::Kind::kConv), 13U);
  EXPECT_NEAR(m.parameter_count(), 138.4e6, 1e6);
  EXPECT_EQ(find_layer(m, "fc1").fc_in, 512U * 7 * 7);
}

TEST(ModelZoo, GoogLeNetMatchesPaperIntro) {
  // "GoogLeNet is comprised of 22 layers with about 6.8 million
  // parameters."
  const auto m = googlenet();
  EXPECT_NEAR(m.parameter_count(), 6.8e6, 0.8e6);
  EXPECT_EQ(m.count(LayerSpec::Kind::kConcat), 9U);  // 9 inceptions
  EXPECT_EQ(m.count(LayerSpec::Kind::kConv), 57U);
}

TEST(ModelZoo, GoogLeNetInceptionConcatChannels) {
  const auto m = googlenet();
  EXPECT_EQ(find_layer(m, "inception_3a/concat").output.c,
            64U + 128 + 32 + 32);
  EXPECT_EQ(find_layer(m, "inception_5b/concat").output.c, 1024U);
}

TEST(ModelZoo, OverFeatShapes) {
  const auto m = overfeat();
  EXPECT_EQ(m.count(LayerSpec::Kind::kConv), 5U);
  EXPECT_EQ(find_layer(m, "conv1").output.h, 56U);
  EXPECT_EQ(find_layer(m, "fc6").fc_in, 1024U * 6 * 6);
}

TEST(ModelZoo, LeNetIsSequentialAndInstantiable) {
  const auto m = lenet5(4);
  auto net = m.instantiate();
  EXPECT_EQ(net.output_shape({4, 1, 32, 32}), (TensorShape{4, 10, 1, 1}));
}

TEST(ModelZoo, GoogLeNetCannotInstantiate) {
  EXPECT_THROW(googlenet().instantiate(), Error);
}

TEST(ModelZoo, SequentialModelsInstantiate) {
  // Shapes must chain correctly end to end for all sequential models.
  for (const auto& m : {alexnet(2), vgg16(1), overfeat(2), lenet5(2)}) {
    const auto net = m.instantiate();
    EXPECT_EQ(net.size(), m.layers.size()) << m.name;
  }
}

TEST(ModelZoo, SpecShapesChain) {
  // Sequential models: every layer's input equals the previous layer's
  // output. (GoogLeNet's inception branches fork, so it is excluded;
  // its shapes are pinned by the concat-channel test above.)
  for (const auto& m : {alexnet(), vgg16(), overfeat(), lenet5()}) {
    TensorShape running = m.layers.front().input;
    for (const auto& l : m.layers) {
      EXPECT_EQ(l.input, running) << m.name << " " << l.name;
      running = l.output;
    }
  }
  // All models: batch propagates everywhere.
  for (const auto& m : figure2_models()) {
    for (const auto& l : m.layers) {
      EXPECT_EQ(l.input.n, m.batch) << m.name << " " << l.name;
      EXPECT_EQ(l.output.n, m.batch) << m.name << " " << l.name;
    }
  }
}

TEST(ModelZoo, Figure2OrderMatchesPaper) {
  const auto models = figure2_models();
  ASSERT_EQ(models.size(), 4U);
  EXPECT_EQ(models[0].name, "GoogLeNet");
  EXPECT_EQ(models[1].name, "VGG-16");
  EXPECT_EQ(models[2].name, "OverFeat");
  EXPECT_EQ(models[3].name, "AlexNet");
}

TEST(ModelZoo, KindNames) {
  EXPECT_EQ(to_string(LayerSpec::Kind::kConv), "conv");
  EXPECT_EQ(to_string(LayerSpec::Kind::kConcat), "concat");
  EXPECT_EQ(to_string(LayerSpec::Kind::kSoftmax), "softmax");
}

}  // namespace
}  // namespace gpucnn::nn
