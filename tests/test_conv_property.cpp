// Randomised property tests over the convolution engines.
//
// Beyond the fixed-geometry agreement suite, these draw seeded random
// configurations and check the *algebraic identities* every correct
// convolution must satisfy:
//   linearity         forward(a*x + b*y) = a*forward(x) + b*forward(y)
//   adjoint (data)    <gout, forward(x, W)> = <backward_data(gout, W), x>
//   adjoint (filter)  <gout, forward(x, W)> = <backward_filter(x, gout), W>
// The adjoint identities are exactly what makes backpropagation correct.
#include <gtest/gtest.h>

#include "conv/conv_engine.hpp"
#include "core/rng.hpp"

namespace gpucnn::conv {
namespace {

double inner(const Tensor& a, const Tensor& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.count(); ++i) {
    acc += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  return acc;
}

ConvConfig random_config(Rng& rng, bool stride_one) {
  ConvConfig cfg;
  cfg.batch = 1 + rng.uniform_int(3);
  cfg.channels = 1 + rng.uniform_int(4);
  cfg.filters = 1 + rng.uniform_int(5);
  cfg.kernel = 1 + rng.uniform_int(5);
  cfg.stride = stride_one ? 1 : 1 + rng.uniform_int(3);
  cfg.pad = rng.uniform_int(cfg.kernel);
  // Input large enough for at least two output positions.
  cfg.input = cfg.kernel + cfg.stride + rng.uniform_int(10);
  return cfg;
}

class ConvProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConvProperty, AdjointIdentitiesHoldForAllStrategies) {
  Rng rng(GetParam());
  const ConvConfig cfg = random_config(rng, /*stride_one=*/false);

  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);

  for (const Strategy s : {Strategy::kDirect, Strategy::kUnrolling,
                           Strategy::kFft, Strategy::kWinograd}) {
    const auto engine = make_engine(s);
    if (!engine->supports(cfg)) continue;

    Tensor y(cfg.output_shape());
    engine->forward(cfg, x, w, y);
    const double forward_inner = inner(gout, y);

    Tensor gx(cfg.input_shape());
    engine->backward_data(cfg, gout, w, gx);
    EXPECT_NEAR(inner(gx, x), forward_inner,
                1e-3 * (1.0 + std::abs(forward_inner)))
        << cfg << " strategy " << to_string(s);

    Tensor gw(cfg.filter_shape());
    engine->backward_filter(cfg, x, gout, gw);
    EXPECT_NEAR(inner(gw, w), forward_inner,
                1e-3 * (1.0 + std::abs(forward_inner)))
        << cfg << " strategy " << to_string(s);
  }
}

TEST_P(ConvProperty, ForwardIsLinearInInput) {
  Rng rng(GetParam() * 31 + 7);
  const ConvConfig cfg = random_config(rng, /*stride_one=*/true);
  const auto engine = make_engine(Strategy::kUnrolling);

  Tensor x1(cfg.input_shape());
  x1.fill_uniform(rng);
  Tensor x2(cfg.input_shape());
  x2.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);

  Tensor combined(cfg.input_shape());
  for (std::size_t i = 0; i < combined.count(); ++i) {
    combined.data()[i] = 2.0F * x1.data()[i] - 0.5F * x2.data()[i];
  }

  Tensor y1(cfg.output_shape());
  Tensor y2(cfg.output_shape());
  Tensor yc(cfg.output_shape());
  engine->forward(cfg, x1, w, y1);
  engine->forward(cfg, x2, w, y2);
  engine->forward(cfg, combined, w, yc);
  double max_err = 0.0;
  for (std::size_t i = 0; i < yc.count(); ++i) {
    const double want = 2.0 * y1.data()[i] - 0.5 * y2.data()[i];
    max_err = std::max(max_err, std::abs(want - yc.data()[i]));
  }
  EXPECT_LT(max_err, 1e-3) << cfg;
}

TEST_P(ConvProperty, RandomGeometriesAgreeAcrossStrategies) {
  Rng rng(GetParam() * 131 + 17);
  const ConvConfig cfg = random_config(rng, /*stride_one=*/false);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);

  Tensor want(cfg.output_shape());
  make_engine(Strategy::kDirect)->forward(cfg, x, w, want);
  for (const Strategy s :
       {Strategy::kUnrolling, Strategy::kFft, Strategy::kWinograd}) {
    const auto engine = make_engine(s);
    if (!engine->supports(cfg)) continue;
    Tensor got(cfg.output_shape());
    engine->forward(cfg, x, w, got);
    EXPECT_LT(max_abs_diff(want, got), 5e-4 * (1.0 + want.max_abs()))
        << cfg << " strategy " << to_string(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace gpucnn::conv
