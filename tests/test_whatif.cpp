// What-if optimisation analysis: the paper's §V suggestions as plan
// transforms, with their predicted effects.
#include "analysis/whatif.hpp"

#include <gtest/gtest.h>

#include "analysis/sweep.hpp"

namespace gpucnn::analysis {
namespace {

using frameworks::FrameworkId;

TEST(WhatIf, CoversAllSuggestions) {
  const auto results = what_if(FrameworkId::kCaffe, base_config());
  EXPECT_EQ(results.size(), std::size(kAllOptimizations));
  for (const auto& r : results) {
    EXPECT_GT(r.baseline_ms, 0.0);
    EXPECT_GT(r.optimized_ms, 0.0);
  }
}

TEST(WhatIf, OptimizationsNeverHurt) {
  // Every transform is an improvement or a no-op on every framework.
  for (const auto id : frameworks::all_frameworks()) {
    for (const auto& r : what_if(id, base_config())) {
      EXPECT_GE(r.speedup(), 0.999)
          << frameworks::to_string(id) << " " << to_string(r.optimization);
    }
  }
}

TEST(WhatIf, BankConflictFixHelpsTheanoFftMost) {
  // §V.C.3: "Bank conflicts are the primary concern to improve the
  // performance of Theano-fft."
  const auto pick = [](FrameworkId id) {
    for (const auto& r : what_if(id, base_config())) {
      if (r.optimization == Optimization::kFixBankConflicts) {
        return r.speedup();
      }
    }
    return 0.0;
  };
  const double theano = pick(FrameworkId::kTheanoFft);
  EXPECT_GT(theano, 1.3);
  for (const auto id : frameworks::all_frameworks()) {
    if (id == FrameworkId::kTheanoFft) continue;
    EXPECT_GE(theano, pick(id)) << frameworks::to_string(id);
  }
}

TEST(WhatIf, DivergenceFixIsNoopWhereWeeIsAlreadyHigh) {
  // §V.C.4: WEE is already > 97% everywhere except Theano-fft, so the
  // control-flow restructuring suggestion cannot help those
  // implementations.
  for (const auto id : frameworks::all_frameworks()) {
    if (id == FrameworkId::kTheanoFft) continue;
    for (const auto& r : what_if(id, base_config())) {
      if (r.optimization != Optimization::kReduceDivergence) continue;
      EXPECT_LT(r.speedup(), 1.05) << frameworks::to_string(id);
    }
  }
}

TEST(WhatIf, TheanoFftNeedsTheFullSuggestionStack) {
  // §V.C summary for Theano-fft: conflicts first, then divergence and
  // coalescing. Applying all three recovers a multiple of its runtime.
  const auto plan =
      frameworks::framework(FrameworkId::kTheanoFft).plan(base_config());
  auto fixed = apply_optimization(plan, Optimization::kFixBankConflicts);
  fixed = apply_optimization(fixed, Optimization::kReduceDivergence);
  fixed = apply_optimization(fixed, Optimization::kCoalesceGlobal);
  const double before = plan_runtime_ms(plan, gpusim::tesla_k40c());
  const double after = plan_runtime_ms(fixed, gpusim::tesla_k40c());
  EXPECT_GT(before / after, 1.5);
}

TEST(WhatIf, AsyncTransfersFixTheCorrMMAnomaly) {
  // Fig. 7's Conv2 spike disappears once the host staging overlaps.
  const auto conv2 = TableOne::layer(1);
  for (const auto& r : what_if(FrameworkId::kTheanoCorrMM, conv2)) {
    if (r.optimization == Optimization::kAsyncTransfers) {
      EXPECT_GT(r.speedup(), 2.0);
    }
  }
  // Caffe already overlaps; the same fix is a no-op there.
  for (const auto& r : what_if(FrameworkId::kCaffe, conv2)) {
    if (r.optimization == Optimization::kAsyncTransfers) {
      EXPECT_LT(r.speedup(), 1.01);
    }
  }
}

TEST(WhatIf, PinnedTransfersHelpPageableCopiers) {
  for (const auto& r : what_if(FrameworkId::kTorchCunn, TableOne::layer(1))) {
    if (r.optimization == Optimization::kPinnedTransfers) {
      EXPECT_GT(r.speedup(), 1.03);
    }
  }
}

TEST(WhatIf, BatchingMergesTransfers) {
  const auto plan =
      frameworks::framework(FrameworkId::kTheanoFft).plan(base_config());
  const auto batched = apply_optimization(
      plan, Optimization::kBatchSmallTransfers);
  EXPECT_LE(batched.transfers.size(), 2U);
  double before = 0.0;
  double after = 0.0;
  for (const auto& t : plan.transfers) before += t.bytes;
  for (const auto& t : batched.transfers) after += t.bytes;
  EXPECT_DOUBLE_EQ(before, after);  // bytes conserved
}

TEST(WhatIf, OccupancyRebalanceTargetsLatencyBoundKernels) {
  // A latency-bound kernel (occupancy need above what its register
  // pressure allows) gets its registers trimmed; a healthy kernel is
  // left alone.
  frameworks::ExecutionPlan plan;
  gpusim::KernelProfile starved;
  starved.name = "starved";
  starved.block_threads = 256;
  starved.regs_per_thread = 128;  // 25% theoretical occupancy
  starved.flops = 1e9;
  starved.occupancy_needed = 0.5;
  starved.gld_dram_factor = 1.0;
  starved.gst_dram_factor = 1.0;
  gpusim::KernelProfile healthy = starved;
  healthy.name = "healthy";
  healthy.regs_per_thread = 40;
  healthy.occupancy_needed = 0.2;
  plan.kernels = {starved, healthy};

  const auto fixed =
      apply_optimization(plan, Optimization::kRebalanceOccupancy);
  EXPECT_LT(fixed.kernels[0].regs_per_thread, 128U);
  EXPECT_EQ(fixed.kernels[1].regs_per_thread, 40U);
  EXPECT_LT(plan_runtime_ms(fixed, gpusim::tesla_k40c()),
            plan_runtime_ms(plan, gpusim::tesla_k40c()));
}

TEST(WhatIf, TransformsDoNotMutateOriginalPlan) {
  const auto plan =
      frameworks::framework(FrameworkId::kTheanoFft).plan(base_config());
  const double before = plan_runtime_ms(plan, gpusim::tesla_k40c());
  for (const auto opt : kAllOptimizations) {
    (void)apply_optimization(plan, opt);
  }
  EXPECT_DOUBLE_EQ(plan_runtime_ms(plan, gpusim::tesla_k40c()), before);
}

TEST(WhatIf, NamesAreHumanReadable) {
  for (const auto opt : kAllOptimizations) {
    EXPECT_FALSE(to_string(opt).empty());
    EXPECT_NE(to_string(opt), "unknown");
  }
}

}  // namespace
}  // namespace gpucnn::analysis
