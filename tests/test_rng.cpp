#include "core/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gpucnn {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.5, 2.5);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 2.5);
  }
}

TEST(Rng, UniformMeanIsCentred) {
  Rng rng(9);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(1234);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.normal(10.0, 0.5);
  EXPECT_NEAR(sum / kDraws, 10.0, 0.05);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(77);
  std::vector<int> histogram(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(10);
    ASSERT_LT(v, 10U);
    ++histogram[v];
  }
  for (const int count : histogram) EXPECT_GT(count, 700);
}

}  // namespace
}  // namespace gpucnn
