#include "gpusim/timeline.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace gpucnn::gpusim {
namespace {

using Kind = TimelineItem::Kind;

TEST(Timeline, SingleStreamSerialises) {
  const std::vector<TimelineItem> items{
      {Kind::kKernel, "a", 0, 10.0, {}},
      {Kind::kKernel, "b", 0, 5.0, {}},
  };
  const auto r = schedule(items);
  EXPECT_DOUBLE_EQ(r.start_ms[1], 10.0);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 15.0);
  EXPECT_DOUBLE_EQ(r.compute_idle_fraction, 0.0);
}

TEST(Timeline, IndependentStreamsOverlap) {
  const std::vector<TimelineItem> items{
      {Kind::kKernel, "compute", 0, 10.0, {}},
      {Kind::kTransfer, "copy", 1, 8.0, {}},
  };
  const auto r = schedule(items);
  EXPECT_DOUBLE_EQ(r.start_ms[1], 0.0);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 10.0);  // copy fully hidden
}

TEST(Timeline, DependencyOrdersAcrossStreams) {
  const std::vector<TimelineItem> items{
      {Kind::kTransfer, "h2d", 1, 4.0, {}},
      {Kind::kKernel, "gemm", 0, 10.0, {0}},  // waits for the copy
  };
  const auto r = schedule(items);
  EXPECT_DOUBLE_EQ(r.start_ms[1], 4.0);
  EXPECT_DOUBLE_EQ(r.makespan_ms, 14.0);
  EXPECT_NEAR(r.compute_idle_fraction, 4.0 / 14.0, 1e-12);
}

TEST(Timeline, SyncVsAsyncPipelining) {
  // Two iterations, copy then compute. Synchronous: everything on one
  // stream. Asynchronous: copies on stream 1, each compute depending
  // only on its own copy — the second copy hides under the first
  // compute, the Fig. 7 prefetch effect.
  const double copy = 4.0;
  const double compute = 10.0;
  const std::vector<TimelineItem> sync{
      {Kind::kTransfer, "c1", 0, copy, {}},
      {Kind::kKernel, "k1", 0, compute, {}},
      {Kind::kTransfer, "c2", 0, copy, {}},
      {Kind::kKernel, "k2", 0, compute, {}},
  };
  const std::vector<TimelineItem> async{
      {Kind::kTransfer, "c1", 1, copy, {}},
      {Kind::kKernel, "k1", 0, compute, {0}},
      {Kind::kTransfer, "c2", 1, copy, {}},
      {Kind::kKernel, "k2", 0, compute, {2}},
  };
  const double sync_ms = schedule(sync).makespan_ms;
  const double async_ms = schedule(async).makespan_ms;
  EXPECT_DOUBLE_EQ(sync_ms, 2 * (copy + compute));
  EXPECT_DOUBLE_EQ(async_ms, copy + 2 * compute);
  EXPECT_LT(async_ms, sync_ms);
}

TEST(Timeline, ChainedDependenciesAccumulate) {
  const std::vector<TimelineItem> items{
      {Kind::kKernel, "a", 0, 3.0, {}},
      {Kind::kKernel, "b", 1, 4.0, {0}},
      {Kind::kKernel, "c", 2, 5.0, {1}},
  };
  const auto r = schedule(items);
  EXPECT_DOUBLE_EQ(r.end_ms[2], 12.0);
}

TEST(Timeline, EmptyScheduleIsZero) {
  const auto r = schedule({});
  EXPECT_DOUBLE_EQ(r.makespan_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.compute_idle_fraction, 0.0);
}

TEST(Timeline, RejectsForwardDependencies) {
  const std::vector<TimelineItem> items{
      {Kind::kKernel, "a", 0, 1.0, {1}},
      {Kind::kKernel, "b", 0, 1.0, {}},
  };
  EXPECT_THROW(schedule(items), Error);
}

TEST(Timeline, RejectsNegativeDuration) {
  const std::vector<TimelineItem> items{
      {Kind::kKernel, "a", 0, -1.0, {}},
  };
  EXPECT_THROW(schedule(items), Error);
}

}  // namespace
}  // namespace gpucnn::gpusim
