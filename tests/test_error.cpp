#include "core/error.hpp"

#include <gtest/gtest.h>

namespace gpucnn {
namespace {

TEST(Error, CheckPassesOnTrue) { EXPECT_NO_THROW(check(true, "fine")); }

TEST(Error, CheckThrowsOnFalse) {
  EXPECT_THROW(check(false, "boom"), Error);
}

TEST(Error, MessageContainsTextAndLocation) {
  try {
    check(false, "needle-message");
    FAIL() << "check should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("needle-message"), std::string::npos);
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos);
  }
}

TEST(Error, CheckFmtFormatsParts) {
  try {
    check_fmt(false, std::source_location::current(), "value=", 42,
              " name=", "x");
    FAIL() << "check_fmt should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value=42 name=x"), std::string::npos);
  }
}

TEST(Error, CheckFmtNoThrowOnTrue) {
  EXPECT_NO_THROW(
      check_fmt(true, std::source_location::current(), "unused"));
}

TEST(Error, ErrorIsRuntimeError) {
  static_assert(std::is_base_of_v<std::runtime_error, Error>);
}

}  // namespace
}  // namespace gpucnn
