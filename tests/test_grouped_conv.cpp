// Grouped convolution (AlexNet-style filter groups).
//
// Ground truth: a grouped convolution equals a full convolution with a
// block-diagonal weight tensor (group g's filters are zero outside its
// channel slice). DirectConv and GemmConv must agree with that
// construction and with each other on every pass.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "conv/conv_engine.hpp"
#include "conv/depthwise_conv.hpp"
#include "conv/direct_conv.hpp"
#include "conv/fft_conv.hpp"
#include "conv/gemm_conv.hpp"
#include "conv/implicit_gemm_conv.hpp"
#include "conv/tiled_fft_conv.hpp"
#include "conv/winograd_conv.hpp"
#include "core/error.hpp"
#include "core/rng.hpp"

namespace gpucnn::conv {
namespace {

// Embeds grouped weights into the equivalent dense block-diagonal tensor.
Tensor block_diagonal(const ConvConfig& grouped, const Tensor& weights) {
  ConvConfig dense = grouped;
  dense.groups = 1;
  Tensor full(dense.filter_shape());
  for (std::size_t f = 0; f < grouped.filters; ++f) {
    const std::size_t g = f / grouped.group_filters();
    for (std::size_t c = 0; c < grouped.group_channels(); ++c) {
      const std::size_t dense_c = g * grouped.group_channels() + c;
      for (std::size_t ky = 0; ky < grouped.kernel; ++ky) {
        for (std::size_t kx = 0; kx < grouped.kernel; ++kx) {
          full(f, dense_c, ky, kx) = weights(f, c, ky, kx);
        }
      }
    }
  }
  return full;
}

TEST(ConvConfigGroups, ShapeAccounting) {
  const ConvConfig cfg{.batch = 2, .input = 8, .channels = 6, .filters = 4,
                       .kernel = 3, .stride = 1, .groups = 2};
  EXPECT_EQ(cfg.group_channels(), 3U);
  EXPECT_EQ(cfg.group_filters(), 2U);
  EXPECT_EQ(cfg.filter_shape(), (TensorShape{4, 3, 3, 3}));
  // FLOPs drop by the group factor.
  ConvConfig dense = cfg;
  dense.groups = 1;
  EXPECT_DOUBLE_EQ(cfg.forward_flops() * 2.0, dense.forward_flops());
}

TEST(ConvConfigGroups, RejectsUnevenDivision) {
  ConvConfig cfg{.batch = 1, .input = 8, .channels = 5, .filters = 4,
                 .kernel = 3, .stride = 1, .groups = 2};
  EXPECT_THROW((void)cfg.output(), Error);
  cfg.channels = 6;
  cfg.filters = 3;
  EXPECT_THROW((void)cfg.output(), Error);
}

class GroupedConv : public ::testing::TestWithParam<ConvConfig> {};

TEST_P(GroupedConv, MatchesBlockDiagonalDenseConvolution) {
  const ConvConfig grouped = GetParam();
  ConvConfig dense = grouped;
  dense.groups = 1;

  Rng rng(31);
  Tensor x(grouped.input_shape());
  x.fill_uniform(rng);
  Tensor w(grouped.filter_shape());
  w.fill_uniform(rng);
  const Tensor w_dense = block_diagonal(grouped, w);

  DirectConv direct;
  Tensor want(dense.output_shape());
  direct.forward(dense, x, w_dense, want);

  for (const Strategy s : {Strategy::kDirect, Strategy::kUnrolling}) {
    const auto engine = make_engine(s);
    ASSERT_TRUE(engine->supports(grouped));
    Tensor got(grouped.output_shape());
    engine->forward(grouped, x, w, got);
    EXPECT_LT(max_abs_diff(want, got), 1e-4) << to_string(s);
  }
}

TEST_P(GroupedConv, BackwardPassesAgreeAcrossEngines) {
  const ConvConfig cfg = GetParam();
  Rng rng(32);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);

  DirectConv direct;
  const auto gemm = make_engine(Strategy::kUnrolling);

  Tensor want_gx(cfg.input_shape());
  Tensor got_gx(cfg.input_shape());
  direct.backward_data(cfg, gout, w, want_gx);
  gemm->backward_data(cfg, gout, w, got_gx);
  EXPECT_LT(max_abs_diff(want_gx, got_gx), 1e-4);

  Tensor want_gw(cfg.filter_shape());
  Tensor got_gw(cfg.filter_shape());
  direct.backward_filter(cfg, x, gout, want_gw);
  gemm->backward_filter(cfg, x, gout, got_gw);
  EXPECT_LT(max_abs_diff(want_gw, got_gw), 1e-3);
}

TEST_P(GroupedConv, AdjointIdentityHolds) {
  const ConvConfig cfg = GetParam();
  Rng rng(33);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);

  DirectConv engine;
  Tensor y(cfg.output_shape());
  engine.forward(cfg, x, w, y);
  double forward_inner = 0.0;
  for (std::size_t i = 0; i < y.count(); ++i) {
    forward_inner += static_cast<double>(gout.data()[i]) * y.data()[i];
  }
  Tensor gx(cfg.input_shape());
  engine.backward_data(cfg, gout, w, gx);
  double data_inner = 0.0;
  for (std::size_t i = 0; i < x.count(); ++i) {
    data_inner += static_cast<double>(gx.data()[i]) * x.data()[i];
  }
  EXPECT_NEAR(data_inner, forward_inner,
              1e-3 * (1.0 + std::abs(forward_inner)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GroupedConv,
    ::testing::Values(
        ConvConfig{.batch = 2, .input = 8, .channels = 4, .filters = 4,
                   .kernel = 3, .stride = 1, .groups = 2},
        ConvConfig{.batch = 1, .input = 10, .channels = 6, .filters = 9,
                   .kernel = 3, .stride = 2, .pad = 1, .groups = 3},
        ConvConfig{.batch = 3, .input = 13, .channels = 8, .filters = 8,
                   .kernel = 5, .stride = 1, .pad = 2, .groups = 4},
        // Depthwise: groups == channels.
        ConvConfig{.batch = 2, .input = 9, .channels = 6, .filters = 6,
                   .kernel = 3, .stride = 1, .groups = 6},
        // AlexNet conv2 geometry, shrunk.
        ConvConfig{.batch = 2, .input = 13, .channels = 16, .filters = 32,
                   .kernel = 5, .stride = 1, .pad = 2, .groups = 2}));

TEST(GroupedConvLimits, FftWinogradImplicitRejectGroups) {
  const ConvConfig cfg{.batch = 1, .input = 8, .channels = 4, .filters = 4,
                       .kernel = 3, .stride = 1, .groups = 2};
  EXPECT_FALSE(make_engine(Strategy::kFft)->supports(cfg));
  EXPECT_FALSE(make_engine(Strategy::kWinograd)->supports(cfg));
  EXPECT_FALSE(ImplicitGemmConv().supports(cfg));
  EXPECT_FALSE(TiledFftConv().supports(cfg));
  EXPECT_TRUE(make_engine(Strategy::kDirect)->supports(cfg));
  EXPECT_TRUE(make_engine(Strategy::kUnrolling)->supports(cfg));
}

// The autotuner's full fp32 pool.
std::vector<std::unique_ptr<ConvEngine>> full_engine_pool() {
  std::vector<std::unique_ptr<ConvEngine>> pool;
  pool.push_back(std::make_unique<DirectConv>());
  pool.push_back(std::make_unique<GemmConv>());
  pool.push_back(std::make_unique<ImplicitGemmConv>());
  pool.push_back(std::make_unique<FftConv>());
  pool.push_back(std::make_unique<TiledFftConv>());
  pool.push_back(std::make_unique<WinogradConv>());
  pool.push_back(std::make_unique<DepthwiseConv>());
  return pool;
}

// The contract the autotuner and advisor rely on: on a grouped config,
// every engine in the pool either declines in supports() or computes
// all three passes correctly. No engine may accept and then throw —
// that is exactly the select-then-throw bug this suite pins.
TEST(GroupedConvLimits, EveryEngineMatchesDirectOrDeclines) {
  const ConvConfig configs[] = {
      {.batch = 2, .input = 8, .channels = 4, .filters = 8, .kernel = 3,
       .stride = 1, .pad = 1, .groups = 2},
      // Depthwise, multiplier 1 and 2.
      {.batch = 1, .input = 9, .channels = 6, .filters = 6, .kernel = 3,
       .stride = 1, .pad = 1, .groups = 6},
      {.batch = 2, .input = 7, .channels = 4, .filters = 8, .kernel = 3,
       .stride = 2, .pad = 1, .groups = 4},
  };
  for (const ConvConfig& cfg : configs) {
    Rng rng(37);
    Tensor x(cfg.input_shape());
    x.fill_uniform(rng);
    Tensor w(cfg.filter_shape());
    w.fill_uniform(rng);
    Tensor gout(cfg.output_shape());
    gout.fill_uniform(rng);

    DirectConv direct;
    Tensor want_y(cfg.output_shape());
    Tensor want_gx(cfg.input_shape());
    Tensor want_gw(cfg.filter_shape());
    direct.forward(cfg, x, w, want_y);
    direct.backward_data(cfg, gout, w, want_gx);
    direct.backward_filter(cfg, x, gout, want_gw);

    for (const auto& engine : full_engine_pool()) {
      if (!engine->supports(cfg)) continue;  // declining is the other
                                             // half of the contract
      SCOPED_TRACE(std::string(engine->name()) + " on " + cfg.to_string());
      Tensor y(cfg.output_shape());
      Tensor gx(cfg.input_shape());
      Tensor gw(cfg.filter_shape());
      ASSERT_NO_THROW(engine->forward(cfg, x, w, y));
      ASSERT_NO_THROW(engine->backward_data(cfg, gout, w, gx));
      ASSERT_NO_THROW(engine->backward_filter(cfg, x, gout, gw));
      EXPECT_LT(max_abs_diff(want_y, y), 1e-4);
      EXPECT_LT(max_abs_diff(want_gx, gx), 1e-4);
      EXPECT_LT(max_abs_diff(want_gw, gw), 1e-3);
    }
  }
}

// Regression for the latent out-of-bounds bug this PR fixes: implicit
// GEMM's backward passes assumed ungrouped geometry but had no guard, so
// a direct mis-call (bypassing supports()) read past the filter planes.
// All three passes must now refuse grouped configs up front.
TEST(GroupedConvLimits, ImplicitGemmThrowsCleanlyOnDirectGroupedMisCall) {
  const ConvConfig cfg{.batch = 1, .input = 8, .channels = 4, .filters = 4,
                       .kernel = 3, .stride = 1, .pad = 1, .groups = 2};
  ImplicitGemmConv engine;
  ASSERT_FALSE(engine.supports(cfg));
  Rng rng(38);
  Tensor x(cfg.input_shape());
  x.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor gout(cfg.output_shape());
  gout.fill_uniform(rng);
  Tensor y(cfg.output_shape());
  Tensor gx(cfg.input_shape());
  Tensor gw(cfg.filter_shape());
  EXPECT_THROW(engine.forward(cfg, x, w, y), Error);
  EXPECT_THROW(engine.backward_data(cfg, gout, w, gx), Error);
  EXPECT_THROW(engine.backward_filter(cfg, x, gout, gw), Error);
}

}  // namespace
}  // namespace gpucnn::conv
