// Engine advisor: the paper's stated goal made executable — "assist
// practitioners identifying the implementations that best serve their CNN
// computation needs in different scenarios" (§I).
//
// Given a convolution configuration, evaluates all seven implementations
// on the simulated K40c and prints runtime, peak memory and shape
// support, then issues the paper's §IV/§V style recommendations.
//
// Run:  ./engine_advisor [batch input channels filters kernel stride]
//       ./engine_advisor 128 64 32 96 5 1
#include <iostream>

#include "analysis/recommend.hpp"
#include "analysis/report.hpp"
#include "cli_args.hpp"

using namespace gpucnn;
using namespace gpucnn::analysis;

int main(int argc, char** argv) {
  ConvConfig cfg{.batch = 64, .input = 128, .channels = 3, .filters = 64,
                 .kernel = 11, .stride = 1};
  if (argc == 7) {
    // Cap each dimension at 2^20: large enough for any real CNN layer,
    // small enough that a typo cannot request a petabyte tensor.
    constexpr std::size_t kMax = std::size_t{1} << 20;
    if (!examples::parse_positive(argv[1], "batch", cfg.batch, kMax) ||
        !examples::parse_positive(argv[2], "input", cfg.input, kMax) ||
        !examples::parse_positive(argv[3], "channels", cfg.channels, kMax) ||
        !examples::parse_positive(argv[4], "filters", cfg.filters, kMax) ||
        !examples::parse_positive(argv[5], "kernel", cfg.kernel, kMax) ||
        !examples::parse_positive(argv[6], "stride", cfg.stride, kMax)) {
      return 2;
    }
    if (cfg.input + 2 * cfg.pad < cfg.kernel) {
      std::cerr << "kernel " << cfg.kernel << " exceeds the padded input "
                << cfg.input << "\n";
      return 2;
    }
  } else if (argc != 1) {
    std::cerr << "usage: engine_advisor [batch input channels filters "
                 "kernel stride]\n";
    return 2;
  }

  std::cout << "Evaluating convolution " << cfg << " with " << cfg.channels
            << " channels on a simulated Tesla K40c\n";

  const Recommendation rec = recommend(cfg);

  Table table("implementation comparison (one training iteration)");
  table.header({"implementation", "strategy", "runtime (ms)", "peak MB",
                "transfer", "note"});
  for (const auto& r : rec.results) {
    const auto& fw = frameworks::framework(r.framework);
    if (!r.supported) {
      table.row({std::string(fw.name()),
                 std::string(conv::to_string(fw.strategy())), "n/s", "-",
                 "-", r.unsupported_reason});
      continue;
    }
    table.row({std::string(fw.name()),
               std::string(conv::to_string(fw.strategy())),
               fmt(r.runtime_ms, 1), fmt(r.peak_mb, 0),
               fmt_percent(r.transfer_share),
               r.out_of_memory ? "exceeds device memory!" : ""});
  }
  table.print(std::cout);

  if (!rec.fastest.has_value()) {
    std::cout << "\nNo implementation fits this configuration on the "
                 "device.\n";
    return 0;
  }
  const auto describe = [&](frameworks::FrameworkId id) {
    for (const auto& r : rec.results) {
      if (r.framework == id) {
        return std::string(frameworks::to_string(id)) + " (" +
               fmt(r.runtime_ms, 1) + " ms, " + fmt(r.peak_mb, 0) + " MB)";
      }
    }
    return std::string(frameworks::to_string(id));
  };
  std::cout << "\nRecommendations (paper §IV-B/§V-B summaries):\n"
            << "  fastest:            " << describe(*rec.fastest) << "\n"
            << "  most memory-lean:   " << describe(*rec.most_memory_lean)
            << "\n";
  if (rec.balanced.has_value()) {
    std::cout << "  balanced choice:    " << describe(*rec.balanced)
              << "\n";
  }
  return 0;
}
