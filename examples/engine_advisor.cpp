// Engine advisor: the paper's stated goal made executable — "assist
// practitioners identifying the implementations that best serve their CNN
// computation needs in different scenarios" (§I).
//
// Given a convolution configuration, evaluates all seven implementations
// on the simulated K40c and prints runtime, peak memory and shape
// support, then issues the paper's §IV/§V style recommendations.
//
// Run:  ./engine_advisor [batch input channels filters kernel stride]
//                        [--measure]
//       ./engine_advisor 128 64 32 96 5 1
//       ./engine_advisor 8 32 16 32 3 1 --measure
//
// --measure additionally times every eligible real CPU engine on all
// three passes and prints the model-predicted winner next to the
// empirically measured one — the paper's crossover story, checkable in
// one command. (Measuring runs the real convolutions: pick a config
// sized for your machine.)
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/recommend.hpp"
#include "analysis/report.hpp"
#include "cli_args.hpp"
#include "tune/autotuner.hpp"

using namespace gpucnn;
using namespace gpucnn::analysis;

namespace {

/// Times all engines on every pass and prints them against the model's
/// predicted ranking.
void measure_and_compare(const ConvConfig& cfg, const Recommendation& rec) {
  auto& tuner = tune::Autotuner::instance();
  const int trials_before = tuner.set_trials_for_testing(1);

  constexpr tune::Pass kPasses[] = {tune::Pass::kForward,
                                    tune::Pass::kBackwardData,
                                    tune::Pass::kBackwardFilter};
  std::vector<std::vector<tune::EngineTiming>> timings;
  timings.reserve(3);
  for (const auto pass : kPasses) {
    timings.push_back(tuner.measure_all(cfg, pass));
  }
  tuner.set_trials_for_testing(trials_before);

  Table table("measured engine times on this machine (ms, best of 2)");
  table.header({"engine", "forward", "backward-data", "backward-filter"});
  for (std::size_t e = 0; e < timings[0].size(); ++e) {
    std::vector<std::string> row{std::string(timings[0][e].engine_name)};
    for (std::size_t p = 0; p < 3; ++p) {
      const auto& t = timings[p][e];
      row.push_back(t.eligible ? fmt(t.ms, 2) : "n/s");
    }
    table.row(row);
  }
  table.print(std::cout);

  // The model predicts one training iteration (all passes together); its
  // winner is compared against each pass's measured winner.
  std::string predicted = "(none)";
  if (rec.fastest.has_value()) {
    predicted = std::string(conv::to_string(
        frameworks::framework(*rec.fastest).strategy()));
  }
  std::cout << "\nmodel-predicted fastest strategy: " << predicted << "\n";
  for (std::size_t p = 0; p < 3; ++p) {
    const tune::EngineTiming* best = nullptr;
    for (const auto& t : timings[p]) {
      if (t.eligible && (best == nullptr || t.ms < best->ms)) best = &t;
    }
    std::cout << "measured fastest, " << tune::to_string(kPasses[p]) << ": "
              << (best != nullptr ? std::string(best->engine_name)
                                  : std::string("(none)"));
    if (best != nullptr) std::cout << " (" << fmt(best->ms, 2) << " ms)";
    std::cout << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  ConvConfig cfg{.batch = 64, .input = 128, .channels = 3, .filters = 64,
                 .kernel = 11, .stride = 1};
  bool measure = false;
  if (argc > 1 && std::string_view(argv[argc - 1]) == "--measure") {
    measure = true;
    --argc;
  }
  if (argc == 7) {
    // Cap each dimension at 2^20: large enough for any real CNN layer,
    // small enough that a typo cannot request a petabyte tensor.
    constexpr std::size_t kMax = std::size_t{1} << 20;
    if (!examples::parse_positive(argv[1], "batch", cfg.batch, kMax) ||
        !examples::parse_positive(argv[2], "input", cfg.input, kMax) ||
        !examples::parse_positive(argv[3], "channels", cfg.channels, kMax) ||
        !examples::parse_positive(argv[4], "filters", cfg.filters, kMax) ||
        !examples::parse_positive(argv[5], "kernel", cfg.kernel, kMax) ||
        !examples::parse_positive(argv[6], "stride", cfg.stride, kMax)) {
      return 2;
    }
    if (cfg.input + 2 * cfg.pad < cfg.kernel) {
      std::cerr << "kernel " << cfg.kernel << " exceeds the padded input "
                << cfg.input << "\n";
      return 2;
    }
  } else if (argc != 1) {
    std::cerr << "usage: engine_advisor [batch input channels filters "
                 "kernel stride] [--measure]\n";
    return 2;
  }

  std::cout << "Evaluating convolution " << cfg << " with " << cfg.channels
            << " channels on a simulated Tesla K40c\n";

  const Recommendation rec = recommend(cfg);

  Table table("implementation comparison (one training iteration)");
  table.header({"implementation", "strategy", "runtime (ms)", "peak MB",
                "transfer", "note"});
  for (const auto& r : rec.results) {
    const auto& fw = frameworks::framework(r.framework);
    if (!r.supported) {
      table.row({std::string(fw.name()),
                 std::string(conv::to_string(fw.strategy())), "n/s", "-",
                 "-", r.unsupported_reason});
      continue;
    }
    table.row({std::string(fw.name()),
               std::string(conv::to_string(fw.strategy())),
               fmt(r.runtime_ms, 1), fmt(r.peak_mb, 0),
               fmt_percent(r.transfer_share),
               r.out_of_memory ? "exceeds device memory!" : ""});
  }
  table.print(std::cout);

  if (!rec.fastest.has_value()) {
    std::cout << "\nNo implementation fits this configuration on the "
                 "device.\n";
    if (measure) measure_and_compare(cfg, rec);
    return 0;
  }
  const auto describe = [&](frameworks::FrameworkId id) {
    for (const auto& r : rec.results) {
      if (r.framework == id) {
        return std::string(frameworks::to_string(id)) + " (" +
               fmt(r.runtime_ms, 1) + " ms, " + fmt(r.peak_mb, 0) + " MB)";
      }
    }
    return std::string(frameworks::to_string(id));
  };
  std::cout << "\nRecommendations (paper §IV-B/§V-B summaries):\n"
            << "  fastest:            " << describe(*rec.fastest) << "\n"
            << "  most memory-lean:   " << describe(*rec.most_memory_lean)
            << "\n";
  if (rec.balanced.has_value()) {
    std::cout << "  balanced choice:    " << describe(*rec.balanced)
              << "\n";
  }
  if (measure) {
    std::cout << "\n";
    measure_and_compare(cfg, rec);
  }
  return 0;
}
