// Serving demo: LeNet-5 from the model zoo behind the InferenceServer
// (docs/SERVING.md).
//
// Four client threads submit single synthetic digits concurrently; the
// server coalesces them into dynamic batches executed by two model
// instances whose weights alias one shared prototype. Every response is
// checked against the prototype's own single-image forward, so the demo
// doubles as an end-to-end correctness proof of batching + weight
// sharing + the planned-forward activation arena.
//
// Run:  ./serve_demo [requests-per-client]
#include <atomic>
#include <cstddef>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "cli_args.hpp"
#include "core/tensor.hpp"
#include "core/timer.hpp"
#include "nn/model_spec.hpp"
#include "nn/synthetic_data.hpp"
#include "serve/server.hpp"

using namespace gpucnn;
using analysis::fmt;

int main(int argc, char** argv) {
  std::size_t per_client = 16;
  if (argc > 1 &&
      !examples::parse_positive(argv[1], "requests-per-client", per_client,
                                std::size_t{10'000})) {
    return 2;
  }
  constexpr std::size_t kClients = 4;

  const auto spec = nn::lenet5(1);
  serve::ServerOptions options;
  options.workers = 2;
  options.batch = {8, 2000};
  options.input = {1, spec.layers.front().input.c,
                   spec.layers.front().input.h,
                   spec.layers.front().input.w};

  std::cout << "serve_demo: LeNet-5 (" << spec.parameter_count()
            << " parameters) behind " << options.workers
            << " workers, max_batch " << options.batch.max_batch
            << ", max delay " << options.batch.max_delay_us << " us; "
            << kClients << " clients x " << per_client << " requests\n";

  serve::InferenceServer server(
      [&spec] { return spec.instantiate(); }, options);

  // One synthetic digit per client, drawn up front so the concurrent
  // phase is pure submit/response traffic.
  nn::SyntheticDataset data(/*classes=*/10, /*channels=*/1,
                            /*image_size=*/32, /*noise=*/0.3);
  std::vector<Tensor> images;
  images.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    images.push_back(data.sample(1).images);
  }

  std::atomic<std::size_t> mismatches{0};
  Timer wall;
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::size_t i = 0; i < per_client; ++i) {
          Tensor out = server.submit(images[c]).get();
          // The prototype is concurrently read by the workers (weights
          // only), so each client keeps a private reference network
          // sharing the same storage for the expected output.
          thread_local nn::Network reference = [&] {
            nn::Network net = spec.instantiate();
            net.set_training(false);
            net.share_parameters(server.prototype());
            return net;
          }();
          if (max_abs_diff(out, reference.forward(images[c])) > 1e-4F) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& client : clients) client.join();
  }
  const double elapsed_ms = wall.elapsed_ms();
  server.shutdown();

  const auto stats = server.stats();
  analysis::Table table("serve_demo summary");
  table.header({"submitted", "completed", "batches", "mean batch",
                "max batch", "p50 (ms)", "p99 (ms)",
                "throughput (rps)"});
  table.row({std::to_string(stats.submitted),
             std::to_string(stats.completed),
             std::to_string(stats.batches), fmt(stats.mean_batch, 2),
             std::to_string(stats.max_batch_observed),
             fmt(stats.latency.p50_us / 1000.0, 3),
             fmt(stats.latency.p99_us / 1000.0, 3),
             fmt(static_cast<double>(stats.completed) /
                     (elapsed_ms / 1000.0),
                 1)});
  table.print(std::cout);

  if (mismatches.load() != 0) {
    std::cerr << mismatches.load()
              << " responses diverged from the prototype forward\n";
    return 1;
  }
  std::cout << "all " << stats.completed
            << " responses match the prototype's single-image forward\n";
  return 0;
}
