// Quickstart: build a small CNN, train it on synthetic data, and verify
// that all three convolution strategies (direct, unrolling, FFT) produce
// the same network output — the core interchangeability point of the
// paper's survey.
//
// Run:  ./quickstart
#include <iostream>

#include "conv/conv_engine.hpp"
#include "nn/activation_layer.hpp"
#include "nn/conv_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/network.hpp"
#include "nn/pool_layer.hpp"
#include "nn/sgd.hpp"
#include "nn/softmax.hpp"
#include "nn/synthetic_data.hpp"

using namespace gpucnn;

namespace {

nn::Network make_net(conv::Strategy strategy) {
  nn::Network net;
  // 16x16 single-channel input, 4 classes.
  net.emplace<nn::ConvLayer>(
      "conv1",
      ConvConfig{.batch = 1, .input = 16, .channels = 1, .filters = 8,
                 .kernel = 3, .stride = 1, .pad = 1},
      strategy);
  net.emplace<nn::ActivationLayer>("relu1");
  net.emplace<nn::PoolLayer>("pool1", 2, 2);
  net.emplace<nn::ConvLayer>(
      "conv2",
      ConvConfig{.batch = 1, .input = 8, .channels = 8, .filters = 16,
                 .kernel = 3, .stride = 1, .pad = 1},
      strategy);
  net.emplace<nn::ActivationLayer>("relu2");
  net.emplace<nn::PoolLayer>("pool2", 2, 2);
  net.emplace<nn::FcLayer>("fc", 16 * 4 * 4, 4);
  net.emplace<nn::SoftmaxLayer>("prob");
  return net;
}

}  // namespace

int main() {
  std::cout << "gpucnn quickstart: training a 2-conv CNN on synthetic "
               "4-class data\n";
  Rng rng(42);
  auto net = make_net(conv::Strategy::kUnrolling);
  net.initialize(rng);
  std::cout << "parameters: " << net.parameter_count() << "\n";

  nn::SyntheticDataset data(/*classes=*/4, /*channels=*/1,
                            /*image_size=*/16, /*noise=*/0.4);
  nn::Sgd sgd(net, {.learning_rate = 0.05, .momentum = 0.9});

  Tensor grad;
  for (int step = 1; step <= 120; ++step) {
    const auto batch = data.sample(32);
    net.zero_grad();
    const Tensor& probs = net.forward(batch.images);
    const double loss = nn::cross_entropy_loss(probs, batch.labels);
    nn::cross_entropy_prob_grad(probs, batch.labels, grad);
    net.backward(grad);
    sgd.step();
    if (step % 30 == 0 || step == 1) {
      std::cout << "step " << step << "  loss " << loss << "  accuracy "
                << nn::accuracy(probs, batch.labels) << "\n";
    }
  }

  // Evaluation batch: accuracy should be near-perfect on this easy task.
  net.set_training(false);
  const auto eval = data.sample(256);
  const Tensor& probs = net.forward(eval.images);
  std::cout << "final eval accuracy: " << nn::accuracy(probs, eval.labels)
            << "\n";

  // Interchangeability: the same trained conv layer produces the same
  // output under all three strategies.
  auto& conv1 = dynamic_cast<nn::ConvLayer&>(net.layer(0));
  Tensor out_unroll;
  conv1.forward(eval.images, out_unroll);
  for (const auto s : {conv::Strategy::kDirect, conv::Strategy::kFft}) {
    conv1.set_strategy(s);
    Tensor out;
    conv1.forward(eval.images, out);
    std::cout << "max |" << conv::to_string(s)
              << " - unrolling| on conv1 output: "
              << max_abs_diff(out, out_unroll) << "\n";
  }
  conv1.set_strategy(conv::Strategy::kUnrolling);
  return 0;
}
