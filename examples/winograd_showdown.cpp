// Winograd showdown: the small-kernel regime revisited.
//
// The paper's Fig. 3(d) shows FFT convolution losing to unrolling below
// k = 7 — the regime that matters most, since VGG/GoogLeNet-era networks
// converged on 3x3 kernels. Winograd minimal filtering (Lavin & Gray,
// published after the paper's experiments) attacks exactly that gap with
// 16 multiplies per 2x2 output tile instead of 36.
//
// This example runs all four real CPU engines on a VGG-style 3x3 layer,
// verifies they agree, and times them — showing where the fourth
// strategy would have landed in the paper's comparison.
//
// Run:  ./winograd_showdown
#include <iostream>

#include "analysis/report.hpp"
#include "conv/conv_engine.hpp"
#include "core/timer.hpp"

using namespace gpucnn;
using analysis::Table;
using analysis::fmt;

int main() {
  // A VGG block-2 shaped layer, scaled to CPU-friendly size.
  const ConvConfig cfg{.batch = 4, .input = 56, .channels = 16,
                       .filters = 16, .kernel = 3, .stride = 1, .pad = 1};
  std::cout << "3x3 convolution " << cfg << " with " << cfg.channels
            << " channels — the regime where the paper's FFT strategy "
               "loses to unrolling.\n";

  Rng rng(2016);
  Tensor input(cfg.input_shape());
  input.fill_uniform(rng);
  Tensor filters(cfg.filter_shape());
  filters.fill_uniform(rng);

  Tensor reference(cfg.output_shape());
  conv::make_engine(conv::Strategy::kDirect)
      ->forward(cfg, input, filters, reference);

  Table table("real CPU engines on the 3x3 layer (forward pass)");
  table.header({"strategy", "time (ms)", "GFLOP/s", "max |err| vs direct",
                "multiplies vs direct"});
  for (const auto s : {conv::Strategy::kDirect, conv::Strategy::kUnrolling,
                       conv::Strategy::kFft, conv::Strategy::kWinograd}) {
    const auto engine = conv::make_engine(s);
    Tensor out(cfg.output_shape());
    engine->forward(cfg, input, filters, out);  // warm-up + correctness
    const double err = max_abs_diff(reference, out);

    constexpr int kReps = 10;
    Timer timer;
    for (int r = 0; r < kReps; ++r) {
      engine->forward(cfg, input, filters, out);
    }
    const double ms = timer.elapsed_ms() / kReps;
    const double gflops = cfg.forward_flops() / (ms * 1e6);
    const char* mults =
        s == conv::Strategy::kWinograd ? "16/36 (F(2x2,3x3))" : "1";
    table.row({std::string(conv::to_string(s)), fmt(ms, 2),
               fmt(gflops, 2), fmt(err, 6), mults});
  }
  table.print(std::cout);

  std::cout
      << "\nAll four engines agree to float tolerance. Winograd's 2.25x "
         "multiply reduction is the\npost-paper answer to the small-"
         "kernel gap the paper documents in Fig. 3(d).\n";
  return 0;
}
