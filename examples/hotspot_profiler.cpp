// Hotspot layer analysis on real hardware — the paper's §IV.A
// methodology run against this library's own CPU engines: average
// per-layer runtime over 10 training iterations, rolled up by layer
// type. The conclusion should match Fig. 2's: convolution dominates.
//
// Run:  ./hotspot_profiler [batch]
#include <iostream>

#include "analysis/layer_profiler.hpp"
#include "analysis/report.hpp"
#include "cli_args.hpp"
#include "nn/model_spec.hpp"

using namespace gpucnn;
using namespace gpucnn::analysis;

int main(int argc, char** argv) {
  std::size_t batch = 16;
  if (argc > 2 ||
      (argc == 2 &&
       !examples::parse_positive<std::size_t>(argv[1], "batch size", batch,
                                              4096))) {
    std::cerr << "usage: hotspot_profiler [batch]\n";
    return 2;
  }

  const auto spec = nn::lenet5(batch);
  auto net = spec.instantiate();
  Rng rng(3);
  net.initialize(rng);

  Tensor input(batch, 1, 32, 32);
  input.fill_uniform(rng);

  std::cout << "Profiling LeNet-5 (batch " << batch
            << ") over 10 real training iterations on the CPU engines — "
               "the paper's Fig. 2 methodology.\n";
  const auto profile = profile_network(net, input, 10);

  Table table("per-layer average runtime");
  table.header({"layer", "type", "forward (ms)", "backward (ms)",
                "share"});
  for (const auto& l : profile.layers) {
    table.row({l.name, l.type, fmt(l.forward_ms, 3), fmt(l.backward_ms, 3),
               fmt_percent(l.total_ms() / profile.total_ms)});
  }
  table.print(std::cout);

  Table rollup("share by layer type (cf. paper Fig. 2)");
  rollup.header({"type", "share"});
  for (const auto& [type, share] : profile.share_by_type()) {
    rollup.row({type, fmt_percent(share)});
  }
  rollup.print(std::cout);
  return 0;
}
