// Reproduce-all driver: regenerates every paper figure's data as CSV for
// downstream plotting.
//
// Run:  ./reproduce_all [output_dir]     (default: paper_output)
// Writes fig2_breakdown.csv, fig3_<sweep>.csv, fig4_hotspots.csv,
// fig5_<sweep>.csv, fig6_metrics.csv, fig7_transfers.csv.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "analysis/model_breakdown.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"

using namespace gpucnn;
using namespace gpucnn::analysis;

namespace {

void write(const Table& table, const std::filesystem::path& path) {
  std::ofstream os(path);
  check(os.is_open(), "cannot write " + path.string());
  table.to_csv(os);
  std::cout << "wrote " << path.string() << "\n";
}

std::vector<std::string> framework_header(const std::string& first) {
  std::vector<std::string> head{first};
  for (const auto id : frameworks::all_frameworks()) {
    head.emplace_back(frameworks::to_string(id));
  }
  return head;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path dir =
      argc > 1 ? argv[1] : "paper_output";
  std::filesystem::create_directories(dir);

  // Figure 2.
  {
    Table t("fig2");
    t.header({"model", "conv", "pool", "relu", "fc", "concat", "lrn"});
    for (const auto& model : nn::figure2_models()) {
      const auto b = breakdown_model(model);
      using K = nn::LayerSpec::Kind;
      t.row({model.name, fmt(b.share(K::kConv), 4),
             fmt(b.share(K::kPool), 4), fmt(b.share(K::kRelu), 4),
             fmt(b.share(K::kFc), 4), fmt(b.share(K::kConcat), 4),
             fmt(b.share(K::kLrn), 4)});
    }
    write(t, dir / "fig2_breakdown.csv");
  }

  // Figures 3 and 5 share the sweeps.
  for (const auto& spec : paper_sweeps()) {
    Table runtime("fig3");
    runtime.header(framework_header(to_string(spec.parameter)));
    Table memory("fig5");
    memory.header(framework_header(to_string(spec.parameter)));
    for (const auto& point : run_sweep(spec)) {
      std::vector<std::string> rt{std::to_string(point.value)};
      std::vector<std::string> mem{std::to_string(point.value)};
      for (const auto& r : point.results) {
        rt.push_back(!r.supported ? "" : fmt(r.runtime_ms, 3));
        mem.push_back(!r.supported ? "" : fmt(r.peak_mb, 1));
      }
      runtime.row(rt);
      memory.row(mem);
    }
    const std::string suffix = to_string(spec.parameter) + ".csv";
    write(runtime, dir / ("fig3_" + suffix));
    write(memory, dir / ("fig5_" + suffix));
  }

  // Figure 4: hotspot kernels at the representative configuration.
  {
    Table t("fig4");
    t.header({"implementation", "kernel", "class", "time_ms", "share"});
    for (const auto& r : evaluate_all(base_config())) {
      if (!r.supported) continue;
      for (const auto& h : r.hotspots) {
        t.row({std::string(frameworks::to_string(r.framework)), h.name,
               gpusim::to_string(h.kind), fmt(h.total_ms, 3),
               fmt(h.share, 4)});
      }
    }
    write(t, dir / "fig4_hotspots.csv");
  }

  // Figure 6 metrics and Figure 7 transfer shares over Table I.
  {
    Table metrics("fig6");
    metrics.header({"layer", "implementation", "runtime_ms", "occupancy",
                    "ipc", "wee", "gld", "gst", "shared"});
    Table transfers("fig7");
    transfers.header({"layer", "implementation", "transfer_share"});
    for (std::size_t i = 0; i < TableOne::kCount; ++i) {
      for (const auto& r : evaluate_all(TableOne::layer(i))) {
        if (!r.supported) continue;
        metrics.row({TableOne::name(i),
                     std::string(frameworks::to_string(r.framework)),
                     fmt(r.kernel_ms, 2),
                     fmt(r.metrics.achieved_occupancy, 2),
                     fmt(r.metrics.ipc, 3),
                     fmt(r.metrics.warp_execution_efficiency, 2),
                     fmt(r.metrics.gld_efficiency, 2),
                     fmt(r.metrics.gst_efficiency, 2),
                     fmt(r.metrics.shared_efficiency, 2)});
        transfers.row({TableOne::name(i),
                       std::string(frameworks::to_string(r.framework)),
                       fmt(r.transfer_share, 4)});
      }
    }
    write(metrics, dir / "fig6_metrics.csv");
    write(transfers, dir / "fig7_transfers.csv");
  }

  std::cout << "done; plot-ready CSVs in " << dir.string() << "\n";
  return 0;
}
