// Reproduce-all driver: regenerates every paper figure's data as one
// self-describing artifact directory (CSV and/or JSON tables, a metrics
// snapshot, a Chrome trace, and a versioned manifest.json tying them
// together — schema reference: docs/METRICS.md).
//
// Run:  ./reproduce_all [output_dir] [--json] [--csv] [--trace]
// (default: paper_output, CSV only — the historical behaviour).
#include <iostream>

#include "analysis/model_breakdown.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "obs/exporter.hpp"

using namespace gpucnn;
using namespace gpucnn::analysis;

namespace {

std::vector<std::string> framework_header(const std::string& first) {
  std::vector<std::string> head{first};
  for (const auto id : frameworks::all_frameworks()) {
    head.emplace_back(frameworks::to_string(id));
  }
  return head;
}

void stage(obs::RunExporter& exporter, const Table& table,
           const std::string& stem) {
  export_table(exporter, table, stem);
  std::cout << "staged " << stem << " (" << table.rows() << " rows)\n";
}

}  // namespace

int main(int argc, char** argv) {
  auto opts = obs::ExportOptions::parse(argc, argv);
  if (!opts.csv && !opts.json) opts.csv = true;  // historical default
  obs::RunExporter exporter(opts, "reproduce_all");
  exporter.annotate("device", gpusim::tesla_k40c().name);
  exporter.annotate("base_config", base_config().to_string());

  // Figure 2.
  {
    Table t("Fig. 2: per-layer-type runtime share of one training "
            "iteration");
    t.header({"model", "batch", "total (ms)", "conv", "pool", "relu", "fc",
              "concat", "lrn", "dropout", "softmax"});
    using K = nn::LayerSpec::Kind;
    for (const auto& model : nn::figure2_models()) {
      const auto b = breakdown_model(model);
      t.row({model.name, std::to_string(model.batch), fmt(b.total_ms, 1),
             fmt(b.share(K::kConv), 4), fmt(b.share(K::kPool), 4),
             fmt(b.share(K::kRelu), 4), fmt(b.share(K::kFc), 4),
             fmt(b.share(K::kConcat), 4), fmt(b.share(K::kLrn), 4),
             fmt(b.share(K::kDropout), 4), fmt(b.share(K::kSoftmax), 4)});
    }
    stage(exporter, t, "fig2_breakdown");
  }

  // Figures 3 and 5 share the sweeps.
  for (const auto& spec : paper_sweeps()) {
    const std::string param = to_string(spec.parameter);
    Table runtime("Fig. 3: runtime (ms) vs " + param);
    runtime.header(framework_header(param));
    Table memory("Fig. 5: peak memory (MB) vs " + param);
    memory.header(framework_header(param));
    for (const auto& point : run_sweep(spec)) {
      std::vector<std::string> rt{std::to_string(point.value)};
      std::vector<std::string> mem{std::to_string(point.value)};
      for (const auto& r : point.results) {
        rt.push_back(!r.supported ? "" : fmt(r.runtime_ms, 3));
        mem.push_back(!r.supported ? "" : fmt(r.peak_mb, 1));
      }
      runtime.row(rt);
      memory.row(mem);
    }
    const std::string suffix = obs::sanitize_column(param);
    stage(exporter, runtime, "fig3_" + suffix);
    stage(exporter, memory, "fig5_" + suffix);
  }

  // Figure 4: hotspot kernels at the representative configuration.
  {
    Table t("Fig. 4: hotspot kernels at the representative configuration");
    t.header({"implementation", "kernel", "class", "launches", "time (ms)",
              "share"});
    for (const auto& r : evaluate_all(base_config())) {
      if (!r.supported) continue;
      for (const auto& h : r.hotspots) {
        t.row({std::string(frameworks::to_string(r.framework)), h.name,
               gpusim::to_string(h.kind), std::to_string(h.launches),
               fmt(h.total_ms, 3), fmt(h.share, 4)});
      }
    }
    stage(exporter, t, "fig4_hotspots");
  }

  // Figure 6 metrics and Figure 7 transfer shares over Table I.
  {
    Table metrics("Fig. 6: runtime-weighted nvprof metrics over Table I");
    metrics.header({"layer", "implementation", "runtime (ms)", "occupancy",
                    "ipc", "wee", "gld", "gst", "shared"});
    Table transfers("Fig. 7: transfer share of total runtime over Table I");
    transfers.header({"layer", "implementation", "transfer share"});
    for (std::size_t i = 0; i < TableOne::kCount; ++i) {
      for (const auto& r : evaluate_all(TableOne::layer(i))) {
        if (!r.supported) continue;
        metrics.row({TableOne::name(i),
                     std::string(frameworks::to_string(r.framework)),
                     fmt(r.kernel_ms, 2),
                     fmt(r.metrics.achieved_occupancy, 2),
                     fmt(r.metrics.ipc, 3),
                     fmt(r.metrics.warp_execution_efficiency, 2),
                     fmt(r.metrics.gld_efficiency, 2),
                     fmt(r.metrics.gst_efficiency, 2),
                     fmt(r.metrics.shared_efficiency, 2)});
        transfers.row({TableOne::name(i),
                       std::string(frameworks::to_string(r.framework)),
                       fmt(r.transfer_share, 4)});
      }
    }
    stage(exporter, metrics, "fig6_metrics");
    stage(exporter, transfers, "fig7_transfers");
  }

  const auto manifest = exporter.finish();
  std::cout << "done; " << exporter.artifact_count()
            << " artifacts described by " << manifest.string() << "\n";
  return 0;
}
