// Tour of the model zoo: prints the architecture and parameter counts of
// the CNNs the paper's introduction cites (AlexNet >60M parameters,
// VGG >144M (VGG-19), GoogLeNet ~6.8M), then the simulated per-layer-
// type runtime breakdown of each — the Fig. 2 analysis as a library
// call.
//
// Run:  ./model_zoo_tour [--tune off|heuristic|measure] [--int8]
//
// With --tune the tour also runs the executable GoogLeNet (batch 1,
// inference) through the activation memory planner and, unless the mode
// is off, the empirical autotuner — closing with the planner's peak-
// memory saving and the tuner's per-shape engine choices.
//
// With --int8 the executable models run synthetic probe batches in
// fp32, are quantized (Network::quantize, calibrated on those same
// batches), and run the probes again — closing with the per-model and
// aggregate fp32-vs-int8 top-1 agreement (docs/QUANTIZATION.md).
#include <functional>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/model_breakdown.hpp"
#include "analysis/report.hpp"
#include "cli_args.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "nn/model_spec.hpp"
#include "obs/metrics.hpp"
#include "tune/autotuner.hpp"

using namespace gpucnn;
using namespace gpucnn::analysis;

namespace {

/// "1x3x224x224 k7 s2 p3" — one tuner cache key, human-readable.
std::string describe_config(const ConvConfig& c) {
  std::string out = std::to_string(c.batch) + "x" +
                    std::to_string(c.channels) + "x" +
                    std::to_string(c.input) + "x" + std::to_string(c.input) +
                    " -> " + std::to_string(c.filters) + " k" +
                    std::to_string(c.kernel) + " s" +
                    std::to_string(c.stride) + " p" + std::to_string(c.pad);
  if (c.groups > 1) out += " g" + std::to_string(c.groups);
  return out;
}

void tour_executable_googlenet(tune::Mode mode) {
  auto& tuner = tune::Autotuner::instance();
  tuner.set_mode(mode);

  auto net = nn::googlenet_network();
  const std::size_t fused = net.fuse_conv_relu();
  if (mode != tune::Mode::kOff) net.enable_autotune(true);
  net.set_training(false);
  net.set_memory_planning(true);

  std::cout << "\nExecutable GoogLeNet, batch-1 inference ("
            << tune::to_string(mode) << " tuning, " << fused
            << " conv+ReLU pairs fused, memory planner on)\n";

  Rng rng(11);
  net.initialize(rng);
  Tensor input(1, 3, 224, 224);
  input.fill_uniform(rng);

  Timer timer;
  net.forward(input);
  const double cold_ms = timer.elapsed_ms();
  timer.reset();
  net.forward(input);
  const double warm_ms = timer.elapsed_ms();

  const auto planned = net.planned_activation_bytes();
  const auto naive = net.naive_activation_bytes();
  std::cout << "forward: " << fmt(cold_ms, 0) << " ms cold, "
            << fmt(warm_ms, 0) << " ms warm\n"
            << "activation memory: " << fmt(planned / 1048576.0, 1)
            << " MB planned vs " << fmt(naive / 1048576.0, 1)
            << " MB naive ("
            << fmt_percent(1.0 - static_cast<double>(planned) /
                                     static_cast<double>(naive))
            << " saved)\n";

  if (mode == tune::Mode::kOff) return;

  Table table("autotuned engine choices (distinct conv shapes)");
  table.header({"convolution", "pass", "engine", "best (ms)",
                "vs default"});
  for (const auto& e : tuner.entries()) {
    const bool timed = e.decision.measured && e.decision.best_ms > 0.0 &&
                       e.decision.baseline_ms > 0.0;
    table.row({describe_config(e.config),
               std::string(tune::to_string(e.pass)),
               std::string(e.decision.engine_name),
               e.decision.measured ? fmt(e.decision.best_ms, 2) : "-",
               timed ? fmt(e.decision.baseline_ms / e.decision.best_ms, 2) +
                           "x"
                     : "-"});
  }
  table.print(std::cout);
  std::cout << "tune cache: " << obs::metrics().counter("tune.hits").value()
            << " hits, " << obs::metrics().counter("tune.misses").value()
            << " misses, " << obs::metrics().counter("tune.trials").value()
            << " trials, "
            << fmt(obs::metrics().gauge("tune.ms_spent").value(), 1)
            << " ms measuring\n";
}

/// Runs the executable zoo (the VGGs are skipped: same 3x3 conv
/// families as the rest at several times the runtime) through the int8
/// inference path and reports per-model fp32-vs-int8 top-1 agreement.
void tour_int8_agreement() {
  struct Probe {
    const char* name;
    std::size_t channels, size, batch, batches;
    std::function<nn::Network()> make;
  };
  std::vector<Probe> probes;
  probes.push_back({"LeNet-5", 1, 32, 64, 4,
                    [] { return nn::lenet5().instantiate(); }});
  probes.push_back({"AlexNet", 3, 227, 8, 2,
                    [] { return nn::alexnet().instantiate(); }});
  probes.push_back({"OverFeat", 3, 231, 8, 2,
                    [] { return nn::overfeat().instantiate(); }});
  probes.push_back({"GoogLeNet", 3, 224, 4, 2,
                    [] { return nn::googlenet_network(); }});

  std::cout << "\nInt8 inference across the executable zoo (synthetic"
               " probes,\nper-channel weights, min/max activation"
               " calibration on the probe batches)\n";
  Table table("fp32-vs-int8 top-1 agreement");
  table.header({"model", "quantized convs", "samples", "agreement"});
  std::size_t samples_total = 0;
  double agree_total = 0.0;
  for (const auto& p : probes) {
    auto net = p.make();
    net.fuse_conv_relu();
    net.set_training(false);
    Rng rng(13);
    net.initialize(rng);

    std::vector<Tensor> batches(p.batches);
    for (auto& t : batches) {
      t.resize({p.batch, p.channels, p.size, p.size});
      t.fill_uniform(rng, -1.0F, 1.0F);
    }
    std::vector<std::size_t> fp32_top;
    for (const auto& t : batches) {
      const auto top = examples::top1(net.forward(t));
      fp32_top.insert(fp32_top.end(), top.begin(), top.end());
    }
    // The probe batches double as the calibration set: agreement should
    // be judged with activation ranges that actually cover the probes.
    const auto report = net.quantize(batches);
    std::vector<std::size_t> int8_top;
    for (const auto& t : batches) {
      const auto top = examples::top1(net.forward(t));
      int8_top.insert(int8_top.end(), top.begin(), top.end());
    }
    const double agree = examples::agreement(fp32_top, int8_top);
    samples_total += fp32_top.size();
    agree_total += agree * static_cast<double>(fp32_top.size());
    table.row({p.name, std::to_string(report.layers_quantized),
               std::to_string(fp32_top.size()), fmt_percent(agree)});
  }
  table.print(std::cout);
  std::cout << "aggregate top-1 agreement: "
            << fmt_percent(agree_total /
                           static_cast<double>(samples_total))
            << " over " << samples_total << " samples\n";
}

}  // namespace

int main(int argc, char** argv) try {
  std::optional<tune::Mode> tune_mode;
  bool int8 = false;
  bool flag_ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--int8") {
      int8 = true;
    } else if (arg == "--tune" && i + 1 < argc) {
      tune_mode = tune::parse_mode(argv[++i]);
      flag_ok = flag_ok && tune_mode.has_value();
    } else {
      flag_ok = false;
    }
  }
  if (!flag_ok) {
    std::cerr << "usage: model_zoo_tour [--tune off|heuristic|measure]"
                 " [--int8]\n";
    return 2;
  }

  std::vector<nn::ModelSpec> zoo;
  zoo.push_back(nn::lenet5());
  zoo.push_back(nn::alexnet());
  zoo.push_back(nn::vgg16());
  zoo.push_back(nn::vgg19());
  zoo.push_back(nn::googlenet());
  zoo.push_back(nn::overfeat());
  zoo.push_back(nn::mobilenet_v1());

  Table table("model zoo");
  table.header({"model", "layers", "conv", "fc", "parameters (M)",
                "paper reference"});
  const char* refs[] = {
      "LeNet-5 (Fig. 1 walkthrough)",
      "\"more than 60 million parameters\"",
      "13 conv + 3 fc",
      "\"19 layers ... over 144 million parameters\"",
      "\"22 layers with about 6.8 million\"",
      "OverFeat fast",
      "depthwise-separable (post-paper)",
  };
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    const auto& m = zoo[i];
    table.row({m.name, std::to_string(m.layers.size()),
               std::to_string(m.count(nn::LayerSpec::Kind::kConv)),
               std::to_string(m.count(nn::LayerSpec::Kind::kFc)),
               fmt(m.parameter_count() / 1e6, 1), refs[i]});
  }
  table.print(std::cout);

  Table shares("simulated training-iteration share by layer type");
  shares.header({"model", "total (ms)", "conv", "pool", "relu", "fc"});
  for (const auto& m : zoo) {
    const auto b = breakdown_model(m);
    shares.row({m.name, fmt(b.total_ms, 0),
                fmt_percent(b.share(nn::LayerSpec::Kind::kConv)),
                fmt_percent(b.share(nn::LayerSpec::Kind::kPool)),
                fmt_percent(b.share(nn::LayerSpec::Kind::kRelu)),
                fmt_percent(b.share(nn::LayerSpec::Kind::kFc))});
  }
  shares.print(std::cout);

  if (tune_mode.has_value()) tour_executable_googlenet(*tune_mode);
  if (int8) tour_int8_agreement();
  return 0;
} catch (const std::exception& e) {
  std::cerr << "model_zoo_tour: " << e.what() << "\n";
  return 1;
}
