// Tour of the model zoo: prints the architecture and parameter counts of
// the CNNs the paper's introduction cites (AlexNet >60M parameters,
// VGG >144M (VGG-19), GoogLeNet ~6.8M), then the simulated per-layer-
// type runtime breakdown of each — the Fig. 2 analysis as a library
// call.
//
// Run:  ./model_zoo_tour
#include <iostream>

#include "analysis/model_breakdown.hpp"
#include "analysis/report.hpp"

using namespace gpucnn;
using namespace gpucnn::analysis;

int main() {
  std::vector<nn::ModelSpec> zoo;
  zoo.push_back(nn::lenet5());
  zoo.push_back(nn::alexnet());
  zoo.push_back(nn::vgg16());
  zoo.push_back(nn::vgg19());
  zoo.push_back(nn::googlenet());
  zoo.push_back(nn::overfeat());

  Table table("model zoo");
  table.header({"model", "layers", "conv", "fc", "parameters (M)",
                "paper reference"});
  const char* refs[] = {
      "LeNet-5 (Fig. 1 walkthrough)",
      "\"more than 60 million parameters\"",
      "13 conv + 3 fc",
      "\"19 layers ... over 144 million parameters\"",
      "\"22 layers with about 6.8 million\"",
      "OverFeat fast",
  };
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    const auto& m = zoo[i];
    table.row({m.name, std::to_string(m.layers.size()),
               std::to_string(m.count(nn::LayerSpec::Kind::kConv)),
               std::to_string(m.count(nn::LayerSpec::Kind::kFc)),
               fmt(m.parameter_count() / 1e6, 1), refs[i]});
  }
  table.print(std::cout);

  Table shares("simulated training-iteration share by layer type");
  shares.header({"model", "total (ms)", "conv", "pool", "relu", "fc"});
  for (const auto& m : zoo) {
    const auto b = breakdown_model(m);
    shares.row({m.name, fmt(b.total_ms, 0),
                fmt_percent(b.share(nn::LayerSpec::Kind::kConv)),
                fmt_percent(b.share(nn::LayerSpec::Kind::kPool)),
                fmt_percent(b.share(nn::LayerSpec::Kind::kRelu)),
                fmt_percent(b.share(nn::LayerSpec::Kind::kFc))});
  }
  shares.print(std::cout);
  return 0;
}
