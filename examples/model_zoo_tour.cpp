// Tour of the model zoo: prints the architecture and parameter counts of
// the CNNs the paper's introduction cites (AlexNet >60M parameters,
// VGG >144M (VGG-19), GoogLeNet ~6.8M), then the simulated per-layer-
// type runtime breakdown of each — the Fig. 2 analysis as a library
// call.
//
// Run:  ./model_zoo_tour [--tune off|heuristic|measure]
//
// With --tune the tour also runs the executable GoogLeNet (batch 1,
// inference) through the activation memory planner and, unless the mode
// is off, the empirical autotuner — closing with the planner's peak-
// memory saving and the tuner's per-shape engine choices.
#include <iostream>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/model_breakdown.hpp"
#include "analysis/report.hpp"
#include "core/rng.hpp"
#include "core/timer.hpp"
#include "nn/model_spec.hpp"
#include "obs/metrics.hpp"
#include "tune/autotuner.hpp"

using namespace gpucnn;
using namespace gpucnn::analysis;

namespace {

/// "1x3x224x224 k7 s2 p3" — one tuner cache key, human-readable.
std::string describe_config(const ConvConfig& c) {
  std::string out = std::to_string(c.batch) + "x" +
                    std::to_string(c.channels) + "x" +
                    std::to_string(c.input) + "x" + std::to_string(c.input) +
                    " -> " + std::to_string(c.filters) + " k" +
                    std::to_string(c.kernel) + " s" +
                    std::to_string(c.stride) + " p" + std::to_string(c.pad);
  if (c.groups > 1) out += " g" + std::to_string(c.groups);
  return out;
}

void tour_executable_googlenet(tune::Mode mode) {
  auto& tuner = tune::Autotuner::instance();
  tuner.set_mode(mode);

  auto net = nn::googlenet_network();
  const std::size_t fused = net.fuse_conv_relu();
  if (mode != tune::Mode::kOff) net.enable_autotune(true);
  net.set_training(false);
  net.set_memory_planning(true);

  std::cout << "\nExecutable GoogLeNet, batch-1 inference ("
            << tune::to_string(mode) << " tuning, " << fused
            << " conv+ReLU pairs fused, memory planner on)\n";

  Rng rng(11);
  net.initialize(rng);
  Tensor input(1, 3, 224, 224);
  input.fill_uniform(rng);

  Timer timer;
  net.forward(input);
  const double cold_ms = timer.elapsed_ms();
  timer.reset();
  net.forward(input);
  const double warm_ms = timer.elapsed_ms();

  const auto planned = net.planned_activation_bytes();
  const auto naive = net.naive_activation_bytes();
  std::cout << "forward: " << fmt(cold_ms, 0) << " ms cold, "
            << fmt(warm_ms, 0) << " ms warm\n"
            << "activation memory: " << fmt(planned / 1048576.0, 1)
            << " MB planned vs " << fmt(naive / 1048576.0, 1)
            << " MB naive ("
            << fmt_percent(1.0 - static_cast<double>(planned) /
                                     static_cast<double>(naive))
            << " saved)\n";

  if (mode == tune::Mode::kOff) return;

  Table table("autotuned engine choices (distinct conv shapes)");
  table.header({"convolution", "pass", "engine", "best (ms)",
                "vs default"});
  for (const auto& e : tuner.entries()) {
    const bool timed = e.decision.measured && e.decision.best_ms > 0.0 &&
                       e.decision.baseline_ms > 0.0;
    table.row({describe_config(e.config),
               std::string(tune::to_string(e.pass)),
               std::string(e.decision.engine_name),
               e.decision.measured ? fmt(e.decision.best_ms, 2) : "-",
               timed ? fmt(e.decision.baseline_ms / e.decision.best_ms, 2) +
                           "x"
                     : "-"});
  }
  table.print(std::cout);
  std::cout << "tune cache: " << obs::metrics().counter("tune.hits").value()
            << " hits, " << obs::metrics().counter("tune.misses").value()
            << " misses, " << obs::metrics().counter("tune.trials").value()
            << " trials, "
            << fmt(obs::metrics().gauge("tune.ms_spent").value(), 1)
            << " ms measuring\n";
}

}  // namespace

int main(int argc, char** argv) try {
  std::optional<tune::Mode> tune_mode;
  const bool flag_ok =
      argc == 1 ||
      (argc == 3 && std::string_view(argv[1]) == "--tune" &&
       (tune_mode = tune::parse_mode(argv[2])).has_value());
  if (!flag_ok) {
    std::cerr << "usage: model_zoo_tour [--tune off|heuristic|measure]\n";
    return 2;
  }

  std::vector<nn::ModelSpec> zoo;
  zoo.push_back(nn::lenet5());
  zoo.push_back(nn::alexnet());
  zoo.push_back(nn::vgg16());
  zoo.push_back(nn::vgg19());
  zoo.push_back(nn::googlenet());
  zoo.push_back(nn::overfeat());

  Table table("model zoo");
  table.header({"model", "layers", "conv", "fc", "parameters (M)",
                "paper reference"});
  const char* refs[] = {
      "LeNet-5 (Fig. 1 walkthrough)",
      "\"more than 60 million parameters\"",
      "13 conv + 3 fc",
      "\"19 layers ... over 144 million parameters\"",
      "\"22 layers with about 6.8 million\"",
      "OverFeat fast",
  };
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    const auto& m = zoo[i];
    table.row({m.name, std::to_string(m.layers.size()),
               std::to_string(m.count(nn::LayerSpec::Kind::kConv)),
               std::to_string(m.count(nn::LayerSpec::Kind::kFc)),
               fmt(m.parameter_count() / 1e6, 1), refs[i]});
  }
  table.print(std::cout);

  Table shares("simulated training-iteration share by layer type");
  shares.header({"model", "total (ms)", "conv", "pool", "relu", "fc"});
  for (const auto& m : zoo) {
    const auto b = breakdown_model(m);
    shares.row({m.name, fmt(b.total_ms, 0),
                fmt_percent(b.share(nn::LayerSpec::Kind::kConv)),
                fmt_percent(b.share(nn::LayerSpec::Kind::kPool)),
                fmt_percent(b.share(nn::LayerSpec::Kind::kRelu)),
                fmt_percent(b.share(nn::LayerSpec::Kind::kFc))});
  }
  shares.print(std::cout);

  if (tune_mode.has_value()) tour_executable_googlenet(*tune_mode);
  return 0;
} catch (const std::exception& e) {
  std::cerr << "model_zoo_tour: " << e.what() << "\n";
  return 1;
}
