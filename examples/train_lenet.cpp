// Trains the paper's §II.A walkthrough model — LeNet-5 (Fig. 1) — on a
// synthetic 10-class digit-like dataset, end to end on the real CPU
// engines, reporting loss and accuracy per epoch.
//
// Run:  ./train_lenet [epochs] [direct|unrolling|fft|winograd]
//                     [--tune off|heuristic|measure] [--int8]
//
// With --tune the network fuses its conv+ReLU pairs and dispatches every
// convolution through the empirical autotuner; the closing table shows
// which engine won each (layer, pass) and what the tuning cost was.
//
// With --int8 the trained network is quantized after evaluation
// (Network::quantize, calibrated on training batches) and re-evaluated
// on the same 512 samples, reporting the int8 accuracy and the top-1
// agreement with the fp32 predictions (docs/QUANTIZATION.md).
//
// With the fft strategy the closing plan-cache line demonstrates the
// PlanCache contract: every layer geometry builds its transform plan
// once (misses == distinct sizes) and all repeated calls hit.
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/report.hpp"
#include "cli_args.hpp"
#include "core/timer.hpp"
#include "fft/plan_cache.hpp"
#include "nn/conv_layer.hpp"
#include "nn/model_spec.hpp"
#include "nn/sgd.hpp"
#include "nn/softmax.hpp"
#include "nn/synthetic_data.hpp"
#include "obs/metrics.hpp"
#include "tune/autotuner.hpp"

using namespace gpucnn;

namespace {

bool parse_strategy(std::string_view text, conv::Strategy& out) {
  for (const auto s : {conv::Strategy::kDirect, conv::Strategy::kUnrolling,
                       conv::Strategy::kFft, conv::Strategy::kWinograd}) {
    if (text == conv::to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) try {
  int epochs = 3;
  conv::Strategy strategy = conv::Strategy::kUnrolling;
  tune::Mode tune_mode = tune::Mode::kOff;
  bool tuning = false;
  bool int8 = false;

  // Pull out the --tune flag (anywhere), then parse the positionals.
  std::vector<std::string_view> positional;
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tune") {
      const auto parsed =
          i + 1 < argc ? tune::parse_mode(argv[++i]) : std::nullopt;
      if (!parsed.has_value()) {
        ok = false;
        break;
      }
      tune_mode = *parsed;
      tuning = tune_mode != tune::Mode::kOff;
    } else if (arg == "--int8") {
      int8 = true;
    } else {
      positional.push_back(arg);
    }
  }
  ok = ok && positional.size() <= 2 &&
       (positional.empty() ||
        examples::parse_positive(positional[0], "epoch count", epochs,
                                 100000)) &&
       (positional.size() < 2 || parse_strategy(positional[1], strategy));
  if (!ok) {
    std::cerr << "usage: train_lenet [epochs] "
                 "[direct|unrolling|fft|winograd] "
                 "[--tune off|heuristic|measure] [--int8]\n";
    return 2;
  }
  constexpr std::size_t kBatch = 32;
  constexpr int kStepsPerEpoch = 25;

  const auto spec = nn::lenet5(kBatch);
  std::cout << "LeNet-5: " << spec.layers.size() << " layers, "
            << spec.parameter_count() << " parameters ("
            << conv::to_string(strategy) << " convolution)\n";

  auto net = spec.instantiate(strategy);
  if (tuning) {
    tune::Autotuner::instance().set_mode(tune_mode);
    const std::size_t fused = net.fuse_conv_relu();
    net.enable_autotune(true);
    std::cout << "autotune: " << tune::to_string(tune_mode) << " mode, "
              << fused << " conv+ReLU pairs fused\n";
  }
  Rng rng(7);
  net.initialize(rng);

  nn::SyntheticDataset data(/*classes=*/10, /*channels=*/1,
                            /*image_size=*/32, /*noise=*/0.35);
  nn::Sgd sgd(net, {.learning_rate = 0.03, .momentum = 0.9,
                    .weight_decay = 1e-4});

  Tensor grad;
  Timer timer;
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    Timer epoch_timer;
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    for (int step = 0; step < kStepsPerEpoch; ++step) {
      const auto batch = data.sample(kBatch);
      net.zero_grad();
      const Tensor& probs = net.forward(batch.images);
      loss_sum += nn::cross_entropy_loss(probs, batch.labels);
      acc_sum += nn::accuracy(probs, batch.labels);
      nn::cross_entropy_prob_grad(probs, batch.labels, grad);
      net.backward(grad);
      sgd.step();
    }
    std::cout << "epoch " << epoch << "  loss "
              << loss_sum / kStepsPerEpoch << "  train accuracy "
              << acc_sum / kStepsPerEpoch << "  ("
              << analysis::fmt(epoch_timer.elapsed_ms(), 0) << " ms)\n";
  }

  net.set_training(false);
  const auto eval = data.sample(512);
  const Tensor& probs = net.forward(eval.images);
  const double fp32_accuracy = nn::accuracy(probs, eval.labels);
  const std::vector<std::size_t> fp32_top = examples::top1(probs);
  std::cout << "eval accuracy on 512 fresh samples: " << fp32_accuracy
            << "\n"
            << "total training time: " << timer.elapsed_ms() / 1000.0
            << " s\n";

  if (tuning) {
    auto& tuner = tune::Autotuner::instance();
    analysis::Table table("autotuned engine choices (batch " +
                          std::to_string(kBatch) + ")");
    table.header({"layer", "forward", "backward-data", "backward-filter"});
    for (std::size_t i = 0; i < net.size(); ++i) {
      const auto* conv = dynamic_cast<const nn::ConvLayer*>(&net.layer(i));
      if (conv == nullptr) continue;
      const ConvConfig cfg = conv->config_for_batch(kBatch);
      const auto pick = [&](tune::Pass pass) {
        const tune::Decision d = tuner.decide(cfg, pass);
        std::string cell(d.engine_name);
        if (d.measured) {
          cell += " (" + analysis::fmt(d.best_ms, 2) + " ms)";
        }
        return cell;
      };
      table.row({conv->name(), pick(tune::Pass::kForward),
                 pick(tune::Pass::kBackwardData),
                 pick(tune::Pass::kBackwardFilter)});
    }
    table.print(std::cout);
    std::cout << "tune cache: "
              << obs::metrics().counter("tune.hits").value() << " hits, "
              << obs::metrics().counter("tune.misses").value()
              << " misses, " << obs::metrics().counter("tune.trials").value()
              << " trials, "
              << analysis::fmt(obs::metrics().gauge("tune.ms_spent").value(),
                               1)
              << " ms measuring\n";
  }

  if (int8) {
    // Calibrate on fresh training-distribution batches, quantize the
    // conv layers in place, and re-run the same eval set.
    std::vector<Tensor> calibration;
    for (int i = 0; i < 4; ++i) {
      calibration.push_back(data.sample(kBatch).images);
    }
    const auto report = net.quantize(calibration);
    const Tensor& qprobs = net.forward(eval.images);
    const double int8_accuracy = nn::accuracy(qprobs, eval.labels);
    std::cout << "int8: " << report.layers_quantized
              << " conv layers quantized ("
              << report.calibration_batches << " calibration batches)\n"
              << "int8 eval accuracy: " << int8_accuracy << " (fp32 "
              << fp32_accuracy << ", delta "
              << analysis::fmt(int8_accuracy - fp32_accuracy, 4) << ")\n"
              << "fp32-vs-int8 top-1 agreement: "
              << analysis::fmt_percent(
                     examples::agreement(fp32_top,
                                         examples::top1(qprobs)))
              << " of 512 samples\n";
  }

  const auto hits = obs::metrics().counter("fft.plan_cache.hits").value();
  const auto misses =
      obs::metrics().counter("fft.plan_cache.misses").value();
  if (hits + misses > 0) {
    std::cout << "fft plan cache: " << hits << " hits, " << misses
              << " misses (" << fft::PlanCache::instance().size()
              << " plans resident)\n";
  }
  return 0;
} catch (const std::exception& e) {
  // E.g. Winograd on LeNet-5's 5x5 kernels: the engine rejects the
  // geometry mid-forward; report it instead of terminating.
  std::cerr << "train_lenet: " << e.what() << "\n";
  return 1;
}
