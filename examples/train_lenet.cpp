// Trains the paper's §II.A walkthrough model — LeNet-5 (Fig. 1) — on a
// synthetic 10-class digit-like dataset, end to end on the real CPU
// engines, reporting loss and accuracy per epoch.
//
// Run:  ./train_lenet [epochs]
#include <iostream>

#include "cli_args.hpp"
#include "core/timer.hpp"
#include "nn/model_spec.hpp"
#include "nn/sgd.hpp"
#include "nn/softmax.hpp"
#include "nn/synthetic_data.hpp"

using namespace gpucnn;

int main(int argc, char** argv) {
  int epochs = 3;
  if (argc > 2 ||
      (argc == 2 && !examples::parse_positive(argv[1], "epoch count",
                                              epochs, 100000))) {
    std::cerr << "usage: train_lenet [epochs]\n";
    return 2;
  }
  constexpr std::size_t kBatch = 32;
  constexpr int kStepsPerEpoch = 25;

  const auto spec = nn::lenet5(kBatch);
  std::cout << "LeNet-5: " << spec.layers.size() << " layers, "
            << spec.parameter_count() << " parameters\n";

  auto net = spec.instantiate(conv::Strategy::kUnrolling);
  Rng rng(7);
  net.initialize(rng);

  nn::SyntheticDataset data(/*classes=*/10, /*channels=*/1,
                            /*image_size=*/32, /*noise=*/0.35);
  nn::Sgd sgd(net, {.learning_rate = 0.03, .momentum = 0.9,
                    .weight_decay = 1e-4});

  Tensor grad;
  Timer timer;
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    for (int step = 0; step < kStepsPerEpoch; ++step) {
      const auto batch = data.sample(kBatch);
      net.zero_grad();
      const Tensor& probs = net.forward(batch.images);
      loss_sum += nn::cross_entropy_loss(probs, batch.labels);
      acc_sum += nn::accuracy(probs, batch.labels);
      nn::cross_entropy_prob_grad(probs, batch.labels, grad);
      net.backward(grad);
      sgd.step();
    }
    std::cout << "epoch " << epoch << "  loss "
              << loss_sum / kStepsPerEpoch << "  train accuracy "
              << acc_sum / kStepsPerEpoch << "\n";
  }

  net.set_training(false);
  const auto eval = data.sample(512);
  const Tensor& probs = net.forward(eval.images);
  std::cout << "eval accuracy on 512 fresh samples: "
            << nn::accuracy(probs, eval.labels) << "\n"
            << "total training time: " << timer.elapsed_ms() / 1000.0
            << " s\n";
  return 0;
}
