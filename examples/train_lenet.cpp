// Trains the paper's §II.A walkthrough model — LeNet-5 (Fig. 1) — on a
// synthetic 10-class digit-like dataset, end to end on the real CPU
// engines, reporting loss and accuracy per epoch.
//
// Run:  ./train_lenet [epochs] [direct|unrolling|fft|winograd]
//
// With the fft strategy the closing plan-cache line demonstrates the
// PlanCache contract: every layer geometry builds its transform plan
// once (misses == distinct sizes) and all repeated calls hit.
#include <iostream>
#include <string_view>

#include "cli_args.hpp"
#include "core/timer.hpp"
#include "fft/plan_cache.hpp"
#include "nn/model_spec.hpp"
#include "nn/sgd.hpp"
#include "nn/softmax.hpp"
#include "nn/synthetic_data.hpp"
#include "obs/metrics.hpp"

using namespace gpucnn;

namespace {

bool parse_strategy(std::string_view text, conv::Strategy& out) {
  for (const auto s : {conv::Strategy::kDirect, conv::Strategy::kUnrolling,
                       conv::Strategy::kFft, conv::Strategy::kWinograd}) {
    if (text == conv::to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) try {
  int epochs = 3;
  conv::Strategy strategy = conv::Strategy::kUnrolling;
  const bool ok =
      argc <= 3 &&
      (argc < 2 ||
       examples::parse_positive(argv[1], "epoch count", epochs, 100000)) &&
      (argc < 3 || parse_strategy(argv[2], strategy));
  if (!ok) {
    std::cerr << "usage: train_lenet [epochs] "
                 "[direct|unrolling|fft|winograd]\n";
    return 2;
  }
  constexpr std::size_t kBatch = 32;
  constexpr int kStepsPerEpoch = 25;

  const auto spec = nn::lenet5(kBatch);
  std::cout << "LeNet-5: " << spec.layers.size() << " layers, "
            << spec.parameter_count() << " parameters ("
            << conv::to_string(strategy) << " convolution)\n";

  auto net = spec.instantiate(strategy);
  Rng rng(7);
  net.initialize(rng);

  nn::SyntheticDataset data(/*classes=*/10, /*channels=*/1,
                            /*image_size=*/32, /*noise=*/0.35);
  nn::Sgd sgd(net, {.learning_rate = 0.03, .momentum = 0.9,
                    .weight_decay = 1e-4});

  Tensor grad;
  Timer timer;
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    double loss_sum = 0.0;
    double acc_sum = 0.0;
    for (int step = 0; step < kStepsPerEpoch; ++step) {
      const auto batch = data.sample(kBatch);
      net.zero_grad();
      const Tensor& probs = net.forward(batch.images);
      loss_sum += nn::cross_entropy_loss(probs, batch.labels);
      acc_sum += nn::accuracy(probs, batch.labels);
      nn::cross_entropy_prob_grad(probs, batch.labels, grad);
      net.backward(grad);
      sgd.step();
    }
    std::cout << "epoch " << epoch << "  loss "
              << loss_sum / kStepsPerEpoch << "  train accuracy "
              << acc_sum / kStepsPerEpoch << "\n";
  }

  net.set_training(false);
  const auto eval = data.sample(512);
  const Tensor& probs = net.forward(eval.images);
  std::cout << "eval accuracy on 512 fresh samples: "
            << nn::accuracy(probs, eval.labels) << "\n"
            << "total training time: " << timer.elapsed_ms() / 1000.0
            << " s\n";

  const auto hits = obs::metrics().counter("fft.plan_cache.hits").value();
  const auto misses =
      obs::metrics().counter("fft.plan_cache.misses").value();
  if (hits + misses > 0) {
    std::cout << "fft plan cache: " << hits << " hits, " << misses
              << " misses (" << fft::PlanCache::instance().size()
              << " plans resident)\n";
  }
  return 0;
} catch (const std::exception& e) {
  // E.g. Winograd on LeNet-5's 5x5 kernels: the engine rejects the
  // geometry mid-forward; report it instead of terminating.
  std::cerr << "train_lenet: " << e.what() << "\n";
  return 1;
}
