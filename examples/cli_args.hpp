// Strict argv number parsing shared by the examples.
//
// std::atoi / std::strtoul silently turn garbage into 0 (and strtoul
// wraps negatives to huge values), which then becomes "0 epochs" or a
// multi-terabyte batch without a word to the user. from_chars rejects
// partial parses, signs and overflow; each example prints its own usage
// line when a parse fails.
#pragma once

#include <charconv>
#include <iostream>
#include <limits>
#include <string_view>

namespace gpucnn::examples {

/// Parses `text` as a positive integer into `out`. Rejects empty input,
/// trailing junk ("12x"), signs, zero and values above `max`. On
/// failure prints a diagnostic naming `what` and returns false.
template <typename T>
bool parse_positive(std::string_view text, const char* what, T& out,
                    T max = std::numeric_limits<T>::max()) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value < 1 ||
      value > max) {
    std::cerr << "invalid " << what << " '" << text
              << "': expected an integer in [1, " << max << "]\n";
    return false;
  }
  out = value;
  return true;
}

}  // namespace gpucnn::examples
