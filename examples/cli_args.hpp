// Small helpers shared by the examples: strict argv number parsing and
// per-sample top-1 extraction for the fp32-vs-int8 agreement reports.
//
// std::atoi / std::strtoul silently turn garbage into 0 (and strtoul
// wraps negatives to huge values), which then becomes "0 epochs" or a
// multi-terabyte batch without a word to the user. from_chars rejects
// partial parses, signs and overflow; each example prints its own usage
// line when a parse fails.
#pragma once

#include <algorithm>
#include <charconv>
#include <iostream>
#include <limits>
#include <string_view>
#include <vector>

#include "core/tensor.hpp"

namespace gpucnn::examples {

/// Parses `text` as a positive integer into `out`. Rejects empty input,
/// trailing junk ("12x"), signs, zero and values above `max`. On
/// failure prints a diagnostic naming `what` and returns false.
template <typename T>
bool parse_positive(std::string_view text, const char* what, T& out,
                    T max = std::numeric_limits<T>::max()) {
  T value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value < 1 ||
      value > max) {
    std::cerr << "invalid " << what << " '" << text
              << "': expected an integer in [1, " << max << "]\n";
    return false;
  }
  out = value;
  return true;
}

/// Per-sample argmax of a (n, classes, 1, 1) probability tensor. Taken
/// before and after Network::quantize, the two vectors give the top-1
/// agreement between the fp32 and int8 paths.
[[nodiscard]] inline std::vector<std::size_t> top1(const Tensor& probs) {
  const auto& s = probs.shape();
  const std::size_t features = s.c * s.h * s.w;
  std::vector<std::size_t> best(s.n);
  for (std::size_t n = 0; n < s.n; ++n) {
    const float* p = probs.raw() + n * features;
    best[n] = static_cast<std::size_t>(
        std::max_element(p, p + features) - p);
  }
  return best;
}

/// Fraction of positions where two top-1 vectors agree.
[[nodiscard]] inline double agreement(const std::vector<std::size_t>& a,
                                      const std::vector<std::size_t>& b) {
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] == b[i]) ++same;
  }
  return a.empty() ? 1.0 : static_cast<double>(same) /
                               static_cast<double>(a.size());
}

}  // namespace gpucnn::examples
