#!/usr/bin/env python3
"""Validate an export directory against the documented schema.

Checks, using only the Python standard library:
  * manifest.json exists, parses, and carries the expected
    schema_version / tool / version / git / run / artifacts fields;
  * every listed artifact file exists, and tables have the advertised
    row count;
  * every column of every JSON table is documented (appears in
    backticks) in docs/METRICS.md, as are all metric names;
  * trace.json, when present, is well-formed Chrome trace_event JSON
    whose complete events nest properly per track.

A .json FILE argument is validated as an autotuner cache instead
(tune_cache_version / simd / threads header plus well-formed entries —
known pass and engine names, 64-bit hex hashes, non-negative timings).

Usage: tools/validate_export.py EXPORT_DIR|TUNE_CACHE.json [...]
Exit status 0 when every argument passes.
"""

import json
import re
import sys
from pathlib import Path

SCHEMA_VERSION = "1.0.0"
REPO_ROOT = Path(__file__).resolve().parent.parent
METRICS_DOC = REPO_ROOT / "docs" / "METRICS.md"

ARTIFACT_KINDS = {"table_csv", "table_json", "json", "metrics", "trace"}

TUNE_CACHE_VERSION = 2
TUNE_ENTRY_FIELDS = {"batch", "input", "channels", "filters", "kernel",
                     "stride", "pad", "groups", "pass", "dtype", "hash",
                     "engine", "best_ms", "baseline_ms"}
TUNE_PASSES = {"forward", "backward-data", "backward-filter"}
TUNE_DTYPES = {"fp32", "int8"}
TUNE_ENGINES = {"direct", "unrolling", "implicit-gemm", "fft", "fft-tiled",
                "winograd", "winograd-f4", "depthwise", "unrolling-int8",
                "implicit-int8"}


class Failure(Exception):
    pass


def documented_names():
    """Every backticked identifier in docs/METRICS.md."""
    text = METRICS_DOC.read_text(encoding="utf-8")
    return set(re.findall(r"`([^`\n]+)`", text))


def check(cond, message):
    if not cond:
        raise Failure(message)


def load_json(path):
    check(path.is_file(), f"missing file: {path.name}")
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as err:
        raise Failure(f"{path.name}: invalid JSON ({err})") from err


def validate_manifest(directory):
    manifest = load_json(directory / "manifest.json")
    for key in ("schema_version", "tool", "version", "git", "run",
                "artifacts"):
        check(key in manifest, f"manifest.json: missing key '{key}'")
    check(manifest["schema_version"] == SCHEMA_VERSION,
          f"manifest.json: schema_version {manifest['schema_version']!r}"
          f" != {SCHEMA_VERSION!r}")
    check(isinstance(manifest["run"], dict), "manifest.json: 'run' not an"
          " object")
    check(isinstance(manifest["artifacts"], list) and manifest["artifacts"],
          "manifest.json: empty artifact list")
    for entry in manifest["artifacts"]:
        check(entry.get("kind") in ARTIFACT_KINDS,
              f"manifest.json: unknown artifact kind {entry.get('kind')!r}")
        check((directory / entry["file"]).is_file(),
              f"manifest.json: listed artifact missing: {entry['file']}")
    return manifest


def validate_table(directory, entry, documented):
    doc = load_json(directory / entry["file"])
    name = entry["file"]
    for key in ("schema_version", "table", "columns", "rows"):
        check(key in doc, f"{name}: missing key '{key}'")
    check(doc["schema_version"] == SCHEMA_VERSION,
          f"{name}: schema_version mismatch")
    check(len(doc["rows"]) == entry.get("rows"),
          f"{name}: {len(doc['rows'])} rows, manifest says"
          f" {entry.get('rows')}")
    for column in doc["columns"]:
        check(re.fullmatch(r"[a-z0-9_]+", column),
              f"{name}: column {column!r} is not snake_case")
        check(column in documented,
              f"{name}: column `{column}` not documented in"
              f" {METRICS_DOC.relative_to(REPO_ROOT)}")
    for row in doc["rows"]:
        check(set(row) <= set(doc["columns"]),
              f"{name}: row keys {sorted(set(row) - set(doc['columns']))}"
              " not in columns")


def validate_csv(directory, entry):
    lines = (directory / entry["file"]).read_text(encoding="utf-8")
    lines = lines.splitlines()
    check(lines, f"{entry['file']}: empty CSV")
    # Quoted cells may embed newlines; only require at least header+rows.
    check(len(lines) >= 1 + entry.get("rows", 0) - lines[0].count('"'),
          f"{entry['file']}: fewer lines than manifest rows")


def validate_metrics(directory, entry, documented):
    doc = load_json(directory / entry["file"])
    check(doc.get("schema_version") == SCHEMA_VERSION,
          "metrics.json: schema_version mismatch")
    for family in ("counters", "gauges", "histograms"):
        check(family in doc, f"metrics.json: missing '{family}'")
        for metric in doc[family]:
            check(metric in documented,
                  f"metrics.json: metric `{metric}` not documented")
    for name, hist in doc["histograms"].items():
        for key in ("count", "sum", "min", "max", "mean", "buckets"):
            check(key in hist, f"metrics.json: {name}: missing '{key}'")
        total = sum(b["count"] for b in hist["buckets"])
        check(total == hist["count"],
              f"metrics.json: {name}: bucket counts {total} !="
              f" count {hist['count']}")


def validate_trace(directory, entry, nest_eps=1e-6, relax_serve=False):
    doc = load_json(directory / entry["file"])
    check(doc.get("displayTimeUnit") == "ms", "trace.json: bad"
          " displayTimeUnit")
    events = doc.get("traceEvents")
    check(isinstance(events, list) and events, "trace.json: no traceEvents")
    track_names = {}
    per_track = {}
    for event in events:
        check(event.get("pid") == 1, "trace.json: unexpected pid")
        if event.get("ph") == "M":
            check(event.get("name") == "thread_name",
                  "trace.json: unknown metadata event")
            track_names[event["tid"]] = event.get("args", {}).get("name", "")
            continue
        check(event.get("ph") == "X",
              f"trace.json: unsupported phase {event.get('ph')!r}")
        for key in ("tid", "ts", "dur", "name", "cat"):
            check(key in event, f"trace.json: X event missing '{key}'")
        check(event["dur"] >= 0, "trace.json: negative duration")
        per_track.setdefault(event["tid"], []).append(
            (event["ts"], event["ts"] + event["dur"], event["name"]))
    for tid, spans in per_track.items():
        check(tid in track_names, f"trace.json: track {tid} has no"
              " thread_name metadata")
        # Per-request events on serve:* virtual tracks overlap whenever
        # requests share a batch; a serving run (manifest run.serve)
        # exempts those tracks from the nesting rule.
        if relax_serve and track_names[tid].startswith("serve:"):
            continue
        # Events on one track must nest or be disjoint — no partial
        # overlap (tolerance for float rounding).
        eps = nest_eps
        stack = []
        # Longest-first at equal starts, so enclosing spans precede
        # children that begin at the same timestamp.
        for start, end, name in sorted(spans,
                                       key=lambda s: (s[0], -s[1])):
            while stack and stack[-1][0] <= start + eps:
                stack.pop()
            if stack:
                check(end <= stack[-1][0] + eps,
                      f"trace.json: track {tid}: '{name}' partially"
                      f" overlaps '{stack[-1][1]}'")
            stack.append((end, name))


SERVING_COLUMNS = {"mode", "offered_rps", "submitted", "completed",
                   "achieved_rps", "p50_ms", "p95_ms", "p99_ms"}


def validate_serving_table(directory, entry):
    """BENCH_serving schema (tools/loadgen): per-step accounting must be
    self-consistent and percentiles ordered."""
    doc = load_json(directory / entry["file"])
    name = entry["file"]
    missing = SERVING_COLUMNS - set(doc.get("columns", []))
    check(not missing,
          f"{name}: BENCH_serving missing columns {sorted(missing)}")
    check(doc.get("rows"), f"{name}: BENCH_serving has no rows")
    check(any(row.get("completed", 0) > 0 for row in doc["rows"]),
          f"{name}: BENCH_serving completed no requests")
    for i, row in enumerate(doc["rows"]):
        check(row["completed"] <= row["submitted"],
              f"{name}: row {i}: completed {row['completed']} >"
              f" submitted {row['submitted']}")
        check(row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"],
              f"{name}: row {i}: percentiles not ordered"
              f" (p50 {row['p50_ms']}, p95 {row['p95_ms']},"
              f" p99 {row['p99_ms']})")


INT8_COLUMNS = {"case", "fp32_real_ns", "int8_real_ns", "speedup"}


def validate_int8_table(directory, entry):
    """BENCH_int8 schema (bench_cpu_kernels): each row pairs an fp32
    benchmark with its int8 twin; the speedup column must be their
    actual ratio."""
    doc = load_json(directory / entry["file"])
    name = entry["file"]
    missing = INT8_COLUMNS - set(doc.get("columns", []))
    check(not missing,
          f"{name}: BENCH_int8 missing columns {sorted(missing)}")
    for i, row in enumerate(doc.get("rows", [])):
        fp32 = float(row["fp32_real_ns"])
        int8 = float(row["int8_real_ns"])
        speedup = float(row["speedup"])
        check(fp32 > 0 and int8 > 0,
              f"{name}: row {i}: non-positive timing")
        check(abs(speedup - fp32 / int8) <= 1e-3 * speedup + 1e-6,
              f"{name}: row {i}: speedup {speedup} != fp32/int8"
              f" {fp32 / int8}")


PREPACK_COLUMNS = {"case", "staged_real_ns", "prepacked_real_ns", "speedup"}


def validate_prepack_table(directory, entry):
    """BENCH_prepack schema (bench_cpu_kernels): each row pairs a staged
    per-call-packing benchmark with its prepacked twin; the speedup
    column must be their actual ratio."""
    doc = load_json(directory / entry["file"])
    name = entry["file"]
    missing = PREPACK_COLUMNS - set(doc.get("columns", []))
    check(not missing,
          f"{name}: BENCH_prepack missing columns {sorted(missing)}")
    for i, row in enumerate(doc.get("rows", [])):
        staged = float(row["staged_real_ns"])
        prepacked = float(row["prepacked_real_ns"])
        speedup = float(row["speedup"])
        check(staged > 0 and prepacked > 0,
              f"{name}: row {i}: non-positive timing")
        check(abs(speedup - staged / prepacked) <= 1e-3 * speedup + 1e-6,
              f"{name}: row {i}: speedup {speedup} != staged/prepacked"
              f" {staged / prepacked}")


WINOGRAD_COLUMNS = {"case", "gemm_real_ns", "winograd_real_ns", "speedup"}


def validate_winograd_table(directory, entry):
    """BENCH_winograd schema (bench_cpu_kernels): each row pairs the
    staged fused GemmConv forward with a prepacked Winograd tile size on
    the same shape; the speedup column must be their actual ratio."""
    doc = load_json(directory / entry["file"])
    name = entry["file"]
    missing = WINOGRAD_COLUMNS - set(doc.get("columns", []))
    check(not missing,
          f"{name}: BENCH_winograd missing columns {sorted(missing)}")
    for i, row in enumerate(doc.get("rows", [])):
        gemm = float(row["gemm_real_ns"])
        winograd = float(row["winograd_real_ns"])
        speedup = float(row["speedup"])
        check(gemm > 0 and winograd > 0,
              f"{name}: row {i}: non-positive timing")
        check(abs(speedup - gemm / winograd) <= 1e-3 * speedup + 1e-6,
              f"{name}: row {i}: speedup {speedup} != gemm/winograd"
              f" {gemm / winograd}")


def validate_tune_cache(path):
    """Validates one on-disk autotuner cache (src/tune/autotuner.cpp)."""
    doc = load_json(path)
    check(doc.get("tune_cache_version") == TUNE_CACHE_VERSION,
          f"tune_cache_version {doc.get('tune_cache_version')!r}"
          f" != {TUNE_CACHE_VERSION}")
    check(isinstance(doc.get("simd"), str) and doc["simd"],
          "missing/empty 'simd'")
    threads = doc.get("threads")
    check(isinstance(threads, (int, float)) and threads >= 1,
          f"bad 'threads': {threads!r}")
    # v2: the header advertises the writer's engine set; a reader whose
    # set differs rejects the whole cache rather than misread decisions.
    engines = doc.get("engines")
    check(isinstance(engines, str) and engines,
          "missing/empty 'engines'")
    advertised = set(engines.split(","))
    entries = doc.get("entries")
    check(isinstance(entries, list), "'entries' is not a list")
    for i, entry in enumerate(entries):
        check(isinstance(entry, dict), f"entry {i}: not an object")
        missing = TUNE_ENTRY_FIELDS - set(entry)
        check(not missing, f"entry {i}: missing {sorted(missing)}")
        check(entry["pass"] in TUNE_PASSES,
              f"entry {i}: unknown pass {entry['pass']!r}")
        check(entry["dtype"] in TUNE_DTYPES,
              f"entry {i}: unknown dtype {entry['dtype']!r}")
        check(entry["engine"] in TUNE_ENGINES,
              f"entry {i}: unknown engine {entry['engine']!r}")
        check(entry["engine"] in advertised,
              f"entry {i}: engine {entry['engine']!r} not in the"
              " advertised 'engines' set")
        check(isinstance(entry["hash"], str) and
              re.fullmatch(r"0x[0-9a-f]{16}", entry["hash"]),
              f"entry {i}: malformed hash {entry['hash']!r}")
        for field in TUNE_ENTRY_FIELDS - {"pass", "dtype", "hash",
                                          "engine"}:
            value = entry[field]
            check(isinstance(value, (int, float)) and value >= 0,
                  f"entry {i}: bad {field}: {value!r}")
        check(entry["best_ms"] <= entry["baseline_ms"] or
              entry["baseline_ms"] == 0,
              f"entry {i}: winner {entry['best_ms']} ms slower than the"
              f" measured default {entry['baseline_ms']} ms")
    return len(entries)


def validate_directory(directory):
    manifest = validate_manifest(directory)
    documented = documented_names()
    # Sanitizer-instrumented runs (manifest run.sanitizer, set by
    # GPUCNN_SANITIZE builds) keep the same schema but dilate timings
    # unevenly — interceptor overhead lands between a span's recorded
    # start and its children's — so sibling spans that abut within
    # nanoseconds in a plain build can partially overlap by a few
    # microseconds. Widen only the trace-nesting tolerance; every
    # structural check stays as strict as a plain run.
    sanitizer = manifest.get("run", {}).get("sanitizer")
    nest_eps = 5e-3 if sanitizer else 1e-6
    serve = manifest.get("run", {}).get("serve")
    for entry in manifest["artifacts"]:
        kind = entry["kind"]
        if kind == "table_json":
            validate_table(directory, entry, documented)
            if entry["file"].startswith("BENCH_int8"):
                validate_int8_table(directory, entry)
            if entry["file"].startswith("BENCH_prepack"):
                validate_prepack_table(directory, entry)
            if entry["file"].startswith("BENCH_winograd"):
                validate_winograd_table(directory, entry)
        elif kind == "table_csv":
            validate_csv(directory, entry)
        elif kind == "metrics":
            validate_metrics(directory, entry, documented)
        elif kind == "trace":
            validate_trace(directory, entry, nest_eps, bool(serve))
    if serve:
        # A serving run must ship its serving table; the full
        # BENCH_serving schema is enforced on the loadgen export.
        serving = [e for e in manifest["artifacts"]
                   if e["file"].startswith("serving")]
        check(serving, "manifest run.serve set but no serving table"
              " exported")
        for entry in serving:
            if entry["kind"] == "table_json" and serve == "loadgen":
                validate_serving_table(directory, entry)
    return len(manifest["artifacts"]), sanitizer


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    status = 0
    for arg in argv[1:]:
        path = Path(arg)
        try:
            if path.is_file():
                count = validate_tune_cache(path)
                print(f"OK   {path}: tune cache with {count} entries valid")
            else:
                count, sanitizer = validate_directory(path)
                note = f" (sanitizer: {sanitizer})" if sanitizer else ""
                print(f"OK   {path}: {count} artifacts valid{note}")
        except Failure as failure:
            print(f"FAIL {path}: {failure}")
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
