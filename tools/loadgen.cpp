// Open-loop Poisson load generator for the inference serving runtime
// (docs/SERVING.md).
//
// Drives an InferenceServer with exponentially distributed arrivals on
// an absolute timeline — a submitter that falls behind bursts to catch
// up rather than silently thinning the offered load — and ramps the
// offered rate geometrically until the server saturates (achieved
// throughput < 90% of offered). Each ramp step reports exact
// p50/p95/p99 latency from the server's raw-sample recorder, then a
// batch-1 server is driven at the same saturated rate so the benefit of
// dynamic batching is a printed speedup, not an inference.
//
// Exports the BENCH_serving table (stem `serving`; schema in
// docs/METRICS.md) through the shared RunExporter and annotates the
// manifest with `serve`, which tools/validate_export.py uses to (a)
// require the table and (b) relax trace nesting on the overlapping
// serve:* request tracks. Exits non-zero if the server leaks requests
// (submitted != completed + rejected + failed, or a non-empty queue
// after drain) so CI can gate on the exit code alone.
#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "nn/activation_layer.hpp"
#include "nn/fc_layer.hpp"
#include "nn/model_spec.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"

namespace {

using namespace gpucnn;
using analysis::fmt;
using analysis::Table;

struct LoadgenOptions {
  std::string model = "lenet5";
  /// FFT by default: its per-forward filter transform is paid once per
  /// batch, so it is the engine whose throughput benefits most from
  /// dynamic batching (and the batch-1 comparison uses the same engine,
  /// keeping the speedup apples-to-apples).
  std::string strategy = "fft";
  /// One worker by default: every forward already spreads across the
  /// process-wide ThreadPool, so extra workers buy only batch-assembly
  /// overlap and cost context switches on small machines.
  std::size_t workers = 1;
  std::size_t max_batch = 8;
  std::int64_t max_delay_us = 2000;
  double rate = 200.0;   // starting offered rate, requests/second
  double ramp = 2.0;     // rate multiplier per step
  std::size_t steps = 7; // ramp ceiling
  double step_ms = 500;  // arrival window per step
  std::uint64_t seed = 7;
  bool autotune = false;
  bool int8 = false;     // serve the int8 quantized inference path
  bool compare = true;   // run the batch-1 comparison server
  bool warmup = true;    // pre-measurement warm-up forwards in the server
  /// Gate on the packed-weight cache: after the batched run, require
  /// that prepacked GEMMs were hit and that no weight was re-packed
  /// during serving (blas.*.prepack_bytes flat once the server is up).
  bool assert_prepack = false;
};

void usage() {
  std::cerr <<
      "usage: loadgen [--json --csv --trace] [--out DIR] [options]\n"
      "  --model=NAME      lenet5 (default) or tiny (4x4 MLP smoke)\n"
      "  --strategy=NAME   conv engine: fft (default), unrolling, direct\n"
      "  --workers=N       worker threads / model instances (1)\n"
      "  --max-batch=N     dynamic batching size trigger (8)\n"
      "  --max-delay-us=N  oldest-request latency budget (2000)\n"
      "  --rate=R          starting offered rate, req/s (200)\n"
      "  --ramp=X          offered-rate multiplier per step (2.0)\n"
      "  --steps=N         maximum ramp steps (7)\n"
      "  --step-ms=N       arrival window per step, ms (500)\n"
      "  --seed=N          weight + arrival seed (7)\n"
      "  --autotune        per-batch-shape engine autotuning\n"
      "  --int8            serve the int8 quantized conv path\n"
      "  --no-compare      skip the batch-1 comparison run\n"
      "  --no-warmup       skip the server's pre-measurement warm-up\n"
      "  --assert-prepack  fail unless serving ran on prepacked weights\n"
      "                    with zero re-packing (needs a model with\n"
      "                    blocked-size GEMMs, e.g. lenet5 at max-batch 8)\n";
}

template <typename T>
bool parse_value(std::string_view text, T& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_args(int argc, char** argv, LoadgenOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    const auto eq = arg.find('=');
    const std::string_view key = arg.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view{}
                                     : arg.substr(eq + 1);
    bool ok = true;
    if (key == "--model") {
      opt.model = std::string(value);
      ok = opt.model == "lenet5" || opt.model == "tiny";
    } else if (key == "--strategy") {
      opt.strategy = std::string(value);
      ok = opt.strategy == "fft" || opt.strategy == "unrolling" ||
           opt.strategy == "direct";
    } else if (key == "--workers") {
      ok = parse_value(value, opt.workers) && opt.workers >= 1;
    } else if (key == "--max-batch") {
      ok = parse_value(value, opt.max_batch) && opt.max_batch >= 1;
    } else if (key == "--max-delay-us") {
      ok = parse_value(value, opt.max_delay_us) && opt.max_delay_us >= 0;
    } else if (key == "--rate") {
      ok = parse_value(value, opt.rate) && opt.rate > 0;
    } else if (key == "--ramp") {
      ok = parse_value(value, opt.ramp) && opt.ramp >= 1.0;
    } else if (key == "--steps") {
      ok = parse_value(value, opt.steps) && opt.steps >= 1;
    } else if (key == "--step-ms") {
      ok = parse_value(value, opt.step_ms) && opt.step_ms > 0;
    } else if (key == "--seed") {
      ok = parse_value(value, opt.seed);
    } else if (arg == "--autotune") {
      opt.autotune = true;
    } else if (arg == "--int8") {
      opt.int8 = true;
    } else if (arg == "--no-compare") {
      opt.compare = false;
    } else if (arg == "--no-warmup") {
      opt.warmup = false;
    } else if (arg == "--assert-prepack") {
      opt.assert_prepack = true;
    } else {
      std::cerr << "loadgen: unknown argument '" << arg << "'\n";
      ok = false;
    }
    if (!ok) {
      if (!value.empty() || eq != std::string_view::npos) {
        std::cerr << "loadgen: bad value for " << key << "\n";
      }
      usage();
      return false;
    }
  }
  return true;
}

/// A tiny FC head on 1x4x4 input: sub-millisecond forwards for CI smoke
/// runs where the LeNet-5 default would dominate the time budget.
nn::Network tiny_network() {
  nn::Network net;
  net.emplace<nn::FcLayer>("fc1", /*in=*/16, /*out=*/32);
  net.emplace<nn::ActivationLayer>("relu", nn::Activation::kRelu);
  net.emplace<nn::FcLayer>("fc2", /*in=*/32, /*out=*/10);
  return net;
}

struct ServedModel {
  std::function<nn::Network()> make;
  TensorShape input;  ///< per-request shape (n == 1)
};

ServedModel select_model(const std::string& name,
                         const std::string& strategy) {
  if (name == "tiny") {
    return {[] { return tiny_network(); }, TensorShape{1, 1, 4, 4}};
  }
  conv::Strategy engine = conv::Strategy::kFft;
  if (strategy == "unrolling") engine = conv::Strategy::kUnrolling;
  if (strategy == "direct") engine = conv::Strategy::kDirect;
  const auto spec = nn::lenet5(1);
  const TensorShape in = spec.layers.front().input;
  return {[spec, engine] { return spec.instantiate(engine); },
          TensorShape{1, in.c, in.h, in.w}};
}

struct StepResult {
  std::string mode;  ///< "batched" ramp step or "batch1" comparison
  double offered_rps = 0.0;
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  double achieved_rps = 0.0;
  /// The rate actually submitted during the arrival window. Differs
  /// from offered_rps by Poisson variance only, so the saturation test
  /// compares achieved against this instead of the nominal rate.
  double realized_rps = 0.0;
  serve::LatencySummary latency;

  [[nodiscard]] bool saturated() const {
    return achieved_rps < 0.9 * realized_rps;
  }
};

/// One open-loop window: Poisson arrivals at `rate_rps` for `window_ms`,
/// then a full drain. Latency percentiles cover exactly this window
/// (the recorder is drained before and after).
StepResult run_window(serve::InferenceServer& server, const Tensor& image,
                      double rate_rps, double window_ms, Rng& rng,
                      std::string mode) {
  // Drop samples from any previous window so percentiles cover exactly
  // this one.
  static_cast<void>(server.take_latencies_us());
  StepResult result;
  result.mode = std::move(mode);
  result.offered_rps = rate_rps;

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<Tensor>> responses;
  double arrival_us = 0.0;
  for (;;) {
    arrival_us += -std::log(1.0 - rng.uniform()) * 1e6 / rate_rps;
    if (arrival_us >= window_ms * 1000.0) break;
    std::this_thread::sleep_until(
        start + std::chrono::microseconds(
                    static_cast<std::int64_t>(arrival_us)));
    responses.push_back(server.submit(image));
  }
  for (auto& response : responses) {
    response.get();
    ++result.completed;
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  result.submitted = static_cast<std::int64_t>(responses.size());
  result.achieved_rps =
      elapsed_s > 0 ? static_cast<double>(result.completed) / elapsed_s
                    : 0.0;
  result.realized_rps =
      static_cast<double>(result.submitted) / (window_ms / 1000.0);
  result.latency = serve::summarize_latencies(server.take_latencies_us());
  return result;
}

void print_step(const StepResult& r) {
  std::cout << "  " << r.mode << " @ " << fmt(r.offered_rps, 0)
            << " rps offered: achieved " << fmt(r.achieved_rps, 0)
            << " rps (" << r.completed << "/" << r.submitted
            << "), p50 " << fmt(r.latency.p50_us / 1000.0, 2)
            << " ms, p99 " << fmt(r.latency.p99_us / 1000.0, 2)
            << " ms\n";
}

/// Requests must be conserved: everything submitted is completed,
/// rejected or failed, and the queue is empty after a drain.
bool queue_leaked(const serve::ServerStats& s, const char* label) {
  const std::int64_t accounted = s.completed + s.rejected + s.failed;
  if (s.submitted != accounted || s.queue_depth != 0) {
    std::cerr << "loadgen: " << label << " server leaked requests: "
              << s.submitted << " submitted vs " << accounted
              << " accounted, queue depth " << s.queue_depth << "\n";
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  auto export_opts = obs::ExportOptions::parse(argc, argv);
  LoadgenOptions opt;
  if (!parse_args(argc, argv, opt)) return 2;

  obs::RunExporter exporter(export_opts, "loadgen");
  exporter.annotate("serve", "loadgen");
  exporter.annotate("model", opt.model);
  exporter.annotate("workers", std::to_string(opt.workers));
  exporter.annotate("max_batch", std::to_string(opt.max_batch));
  exporter.annotate("max_delay_us", std::to_string(opt.max_delay_us));

  exporter.annotate("strategy", opt.strategy);
  const ServedModel model = select_model(opt.model, opt.strategy);
  serve::ServerOptions server_opts;
  server_opts.workers = opt.workers;
  server_opts.batch = {opt.max_batch, opt.max_delay_us};
  server_opts.input = model.input;
  server_opts.seed = opt.seed;
  server_opts.autotune = opt.autotune;
  server_opts.int8 = opt.int8;
  server_opts.warmup = opt.warmup;
  exporter.annotate("int8", opt.int8 ? "1" : "0");
  exporter.annotate("warmup", opt.warmup ? "1" : "0");

  Rng rng(opt.seed ^ 0x10adbeefULL);
  Tensor image(1, model.input.c, model.input.h, model.input.w);
  image.fill_uniform(rng, 0.0F, 1.0F);

  std::cout << "Serving " << opt.model << " ("
            << (opt.model == "tiny" ? "fc" : opt.strategy)
            << (opt.int8 ? " engine, int8" : " engine") << ") with "
            << opt.workers
            << " workers, max_batch " << opt.max_batch << ", max delay "
            << opt.max_delay_us << " us; Poisson ramp x" << opt.ramp
            << " from " << fmt(opt.rate, 0) << " rps ("
            << fmt(opt.step_ms, 0) << " ms windows).\n";

  std::vector<StepResult> results;
  bool leaked = false;
  bool prepack_failed = false;
  double saturated_rate = opt.rate;
  double batched_peak_rps = 0.0;
  {
    auto& metrics = obs::metrics();
    auto& sgemm_hits = metrics.counter("blas.sgemm.prepack_hits");
    const std::int64_t hits_before = sgemm_hits.value();
    serve::InferenceServer server(model.make, server_opts);
    // Construction is done: weights are packed (prototype freeze) and
    // the warm-up forwards have run. From here on prepack_bytes must not
    // move — serving re-packs no weights.
    auto& sgemm_pack_bytes = metrics.counter("blas.sgemm.prepack_bytes");
    auto& igemm_pack_bytes = metrics.counter("blas.igemm.prepack_bytes");
    const std::int64_t pack_bytes_before =
        sgemm_pack_bytes.value() + igemm_pack_bytes.value();
    double rate = opt.rate;
    for (std::size_t step = 0; step < opt.steps; ++step) {
      StepResult r =
          run_window(server, image, rate, opt.step_ms, rng, "batched");
      print_step(r);
      batched_peak_rps = std::max(batched_peak_rps, r.achieved_rps);
      saturated_rate = rate;
      results.push_back(std::move(r));
      if (results.back().saturated()) {
        std::cout << "  saturated: achieved < 90% of the realized "
                     "offered rate\n";
        break;
      }
      rate *= opt.ramp;
    }
    server.shutdown();
    const auto stats = server.stats();
    std::cout << "batched server: " << stats.batches << " batches, mean "
              << fmt(stats.mean_batch, 2) << ", max "
              << stats.max_batch_observed << "\n";
    leaked = queue_leaked(stats, "batched") || leaked;

    if (opt.assert_prepack) {
      const std::int64_t hits =
          sgemm_hits.value() - hits_before;
      const std::int64_t repacked = sgemm_pack_bytes.value() +
                                    igemm_pack_bytes.value() -
                                    pack_bytes_before;
      std::cout << "prepack: " << hits
                << " prepacked GEMM hits, " << repacked
                << " weight bytes re-packed after startup\n";
      if (hits <= 0) {
        std::cerr << "loadgen: --assert-prepack: no GEMM consumed the "
                     "packed-weight cache\n";
        prepack_failed = true;
      }
      if (repacked != 0) {
        std::cerr << "loadgen: --assert-prepack: weights were re-packed "
                     "while serving\n";
        prepack_failed = true;
      }
    }
  }

  double batch1_rps = 0.0;
  if (opt.compare) {
    // Same model and workers, batching disabled: every request is its
    // own forward. Driven at the batched server's saturated offered
    // rate so the two achieved throughputs are directly comparable.
    serve::ServerOptions single = server_opts;
    single.batch = {1, 0};
    serve::InferenceServer server(model.make, single);
    StepResult r = run_window(server, image, saturated_rate, opt.step_ms,
                              rng, "batch1");
    print_step(r);
    batch1_rps = r.achieved_rps;
    results.push_back(std::move(r));
    server.shutdown();
    leaked = queue_leaked(server.stats(), "batch1") || leaked;

    if (batch1_rps > 0) {
      std::cout << "dynamic batching speedup at saturation: "
                << fmt(batched_peak_rps / batch1_rps, 2) << "x ("
                << fmt(batched_peak_rps, 0) << " vs "
                << fmt(batch1_rps, 0) << " rps)\n";
    }
  }

  Table table("BENCH_serving: open-loop Poisson ramp to saturation");
  table.header({"mode", "offered (rps)", "submitted", "completed",
                "achieved (rps)", "p50 (ms)", "p95 (ms)", "p99 (ms)"});
  for (const StepResult& r : results) {
    table.row({r.mode, fmt(r.offered_rps, 1), std::to_string(r.submitted),
               std::to_string(r.completed), fmt(r.achieved_rps, 1),
               fmt(r.latency.p50_us / 1000.0, 3),
               fmt(r.latency.p95_us / 1000.0, 3),
               fmt(r.latency.p99_us / 1000.0, 3)});
  }
  table.print(std::cout);
  analysis::export_table(exporter, table, "serving");

  if (leaked) return 1;
  std::cout << "request accounting clean: no queue leak\n";
  if (prepack_failed) return 1;
  return 0;
}
