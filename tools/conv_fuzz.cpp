// Command-line driver for the conv-config fuzzer (analysis/conv_fuzz).
//
//   conv_fuzz [--seed N] [--count N] [--start N] [--verbose] [--no-poison]
//             [--no-fused] [--int8] [--prepack] [--depthwise] [--winograd]
//             [--tune-cache [PATH]]
//
// Deterministic per (seed, index): a failing run prints, for every
// failure, the exact one-config command that reproduces it. Exit status:
// 0 all checks passed, 1 failures found, 2 bad usage.
//
// CI runs `conv_fuzz --seed 1 --count 200` on every PR (see
// .github/workflows/ci.yml and docs/TESTING.md).
#include <charconv>
#include <cstring>
#include <iostream>
#include <string_view>

#include "analysis/conv_fuzz.hpp"

namespace {

int usage(std::ostream& os) {
  os << "usage: conv_fuzz [--seed N] [--count N] [--start N]"
        " [--verbose] [--no-poison] [--no-fused] [--int8] [--prepack]"
        " [--depthwise] [--winograd] [--tune-cache [PATH]]\n"
        "  --seed N      RNG seed defining the config sequence"
        " (default 1)\n"
        "  --count N     number of configs to check (default 200)\n"
        "  --start N     first config index, for reproducing one"
        " failure (default 0)\n"
        "  --verbose     print every config as it is checked\n"
        "  --no-poison   do not poison workspace scratch during the"
        " run\n"
        "  --no-fused    skip the fused-vs-unfused layer cross-check\n"
        "  --int8        cross-check int8 quantized forwards against"
        " fp32\n"
        "  --prepack     cross-check prepacked forwards against the"
        " staged paths (bit-identity)\n"
        "  --depthwise   draw only depthwise-degenerate configs"
        " (groups == C, multipliers > 1)\n"
        "  --winograd    draw only Winograd-eligible configs"
        " (k = 3, s = 1, pads 0-2, tile-edge adversarial)\n"
        "  --tune-cache [PATH]\n"
        "                round-trip autotuner decisions through the disk"
        " cache\n"
        "                (default file: fuzz_tune_cache.json)\n";
  return 2;
}

/// Full-string unsigned parse; rejects "12abc", "-3" and overflow.
bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

}  // namespace

int main(int argc, char** argv) {
  gpucnn::analysis::FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool has_value = i + 1 < argc;
    std::uint64_t value = 0;
    if (arg == "--verbose") {
      options.log = &std::cout;
    } else if (arg == "--no-poison") {
      options.poison = false;
    } else if (arg == "--no-fused") {
      options.fused = false;
    } else if (arg == "--int8") {
      options.int8 = true;
    } else if (arg == "--prepack") {
      options.prepack = true;
    } else if (arg == "--depthwise") {
      options.depthwise = true;
    } else if (arg == "--winograd") {
      options.winograd = true;
    } else if (arg == "--tune-cache") {
      options.tune_cache = true;
      // Optional PATH operand: anything that does not look like a flag.
      if (has_value && argv[i + 1][0] != '-') {
        options.tune_cache_path = argv[i + 1];
        ++i;
      }
    } else if (arg == "--seed" && has_value && parse_u64(argv[i + 1], value)) {
      options.seed = value;
      ++i;
    } else if (arg == "--count" && has_value &&
               parse_u64(argv[i + 1], value)) {
      options.count = value;
      ++i;
    } else if (arg == "--start" && has_value &&
               parse_u64(argv[i + 1], value)) {
      options.start = value;
      ++i;
    } else {
      std::cerr << "conv_fuzz: bad argument '" << arg << "'\n";
      return usage(std::cerr);
    }
  }

  const auto report = gpucnn::analysis::run_fuzz(options);

  std::cout << "conv_fuzz: seed " << options.seed << ", configs ["
            << options.start << ", " << options.start + options.count
            << "): " << report.configs_run << " run, "
            << report.engine_checks << " engine-pass comparisons ("
            << report.engine_skips << " unsupported skipped), "
            << report.plan_checks << " framework plans validated ("
            << report.plan_skips << " shape-limited skipped), "
            << report.fused_checks << " fused-layer comparisons, "
            << report.int8_checks << " int8-vs-fp32 comparisons, "
            << report.prepack_checks << " prepacked-vs-staged comparisons, "
            << report.tune_checks << " tune-cache round-trips\n";

  for (const auto& failure : report.failures) {
    std::cout << "FAIL [" << failure.index << "] "
              << failure.config.to_string() << " pad=" << failure.config.pad
              << " groups=" << failure.config.groups << "\n  "
              << failure.what << "\n  repro: "
              << gpucnn::analysis::repro_command(options.seed, failure.index,
                                                 options.depthwise,
                                                 options.winograd)
              << '\n';
  }
  if (!report.ok()) {
    std::cout << report.failures.size() << " failure(s)\n";
    return 1;
  }
  std::cout << "all checks passed\n";
  return 0;
}
