// Figure 3 — "Runtime comparison for seven convolutional implementations
// on GPU with varying configurations."
//
// Five sweeps around the base 5-tuple (64,128,64,11,1); each table prints
// the per-iteration runtime (fwd + bwd, ms) of all seven implementations.
// Unsupported shapes print "n/s" (the paper plots dots/omits them).
// A summary block checks the paper's headline claims.
#include <iostream>
#include <limits>

#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "obs/exporter.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;
using frameworks::FrameworkId;

std::string cell(const LayerResult& r) {
  if (!r.supported) return "n/s";
  if (r.out_of_memory) return "OOM";
  return fmt(r.runtime_ms, 1);
}

const LayerResult* find(const SweepPoint& p, FrameworkId id) {
  for (const auto& r : p.results) {
    if (r.framework == id) return &r;
  }
  return nullptr;
}

// Ratio of the best non-fbfft runtime to fbfft's (fbfft speedup).
double fbfft_speedup(const SweepPoint& p) {
  const auto* fb = find(p, FrameworkId::kFbfft);
  if (fb == nullptr || !fb->supported || fb->out_of_memory) return 0.0;
  double best_other = std::numeric_limits<double>::max();
  for (const auto& r : p.results) {
    if (r.framework == FrameworkId::kFbfft || !r.supported ||
        r.out_of_memory) {
      continue;
    }
    best_other = std::min(best_other, r.runtime_ms);
  }
  return best_other / fb->runtime_ms;
}

void print_sweep(const SweepSpec& spec, obs::RunExporter& exporter) {
  const auto points = run_sweep(spec);
  Table table("Fig. 3: runtime (ms) vs " + to_string(spec.parameter) +
              ", base " + base_config().to_string());
  std::vector<std::string> head{to_string(spec.parameter)};
  for (const auto id : frameworks::all_frameworks()) {
    head.emplace_back(frameworks::to_string(id));
  }
  table.header(head);
  for (const auto& p : points) {
    std::vector<std::string> row{std::to_string(p.value)};
    for (const auto id : frameworks::all_frameworks()) {
      row.push_back(cell(*find(p, id)));
    }
    table.row(row);
  }
  table.print(std::cout);
  export_table(exporter, table,
               "fig3_" + obs::sanitize_column(to_string(spec.parameter)));

  if (spec.parameter == SweepParameter::kBatch ||
      spec.parameter == SweepParameter::kInput) {
    double lo = std::numeric_limits<double>::max();
    double hi = 0.0;
    for (const auto& p : points) {
      const double s = fbfft_speedup(p);
      if (s <= 0.0) continue;
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    std::cout << "  fbfft speedup over best other: " << fmt(lo, 2) << "x - "
              << fmt(hi, 2) << "x   (paper: 1.4x - 9.7x across batch/input)\n";
  }
  if (spec.parameter == SweepParameter::kKernel) {
    for (const auto& p : points) {
      const auto* fb = find(p, FrameworkId::kFbfft);
      const auto* cu = find(p, FrameworkId::kCudnn);
      if (fb == nullptr || cu == nullptr || !fb->supported) continue;
      const double ratio = fb->runtime_ms / cu->runtime_ms;
      std::cout << "  k=" << p.value << ": fbfft/cuDNN = " << fmt(ratio, 2)
                << (ratio > 1.0 ? "  (cuDNN faster)" : "  (fbfft faster)")
                << '\n';
    }
    std::cout << "  (paper: cuDNN 1.21x-2.62x faster below k=7; fbfft up to "
                 "19x faster above)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::ExportOptions::parse(argc, argv);
  obs::RunExporter exporter(opts, "bench_fig3_runtime_sweep");
  exporter.annotate("device", gpusim::tesla_k40c().name);
  exporter.annotate("base_config", base_config().to_string());

  std::cout << "Reproduction of Figure 3 (ICPP'16 GPU-CNN study): runtime of "
               "one training iteration\nof a single convolutional layer, "
               "simulated on a Tesla K40c device model.\n";
  for (const auto& spec : paper_sweeps()) print_sweep(spec, exporter);
  return 0;
}
