// convnet-benchmarks presentation (paper ref [27]): the community
// benchmark the paper's Table I layers and base-tuple methodology come
// from reported forward / backward / total per layer per implementation.
// This bench prints the same split from the simulator's per-pass tags.
#include <iostream>

#include "analysis/conv_runner.hpp"
#include "analysis/report.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;

}  // namespace

int main() {
  std::cout << "convnet-benchmarks-style per-pass split (the reporting "
               "format of the paper's ref [27]).\nbwd = backward-data + "
               "backward-filter (+ pass-internal auxiliaries).\n";
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    const auto cfg = TableOne::layer(i);
    Table table(TableOne::name(i) + " " + cfg.to_string() +
                "  fwd / bwd / total (ms)");
    table.header({"implementation", "fwd", "bwd", "total",
                  "bwd/fwd ratio"});
    for (const auto& r : evaluate_all(cfg)) {
      if (!r.supported) {
        table.row({std::string(frameworks::to_string(r.framework)), "n/s",
                   "-", "-", "-"});
        continue;
      }
      const double fwd = r.forward_ms();
      const double bwd = r.backward_ms();
      table.row({std::string(frameworks::to_string(r.framework)),
                 fmt(fwd, 1), fmt(bwd, 1), fmt(fwd + bwd, 1),
                 fmt(fwd > 0.0 ? bwd / fwd : 0.0, 2)});
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: bwd ~ 2x fwd for GEMM/direct "
               "implementations (two backward GEMMs per forward one).\n";
  return 0;
}
