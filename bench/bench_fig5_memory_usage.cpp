// Figure 5 — "Memory usage comparison for seven convolutional
// implementations on GPU with varying configurations."
//
// Peak device memory (MB, as nvidia-smi would report it) over the same
// five sweeps as Figure 3. Paper anchors: cuda-convnet2 lowest
// (125–2076 MB), Torch-cunn close behind; Caffe/cuDNN/Theano-CorrMM
// higher (up to ~3800 MB); FFT implementations highest (fbfft
// 1632–10866 MB) with step fluctuations at power-of-two padding
// boundaries; configurations that exceed the 12 GB K40c are flagged
// (the paper's "program crush" observation).
#include <algorithm>
#include <iostream>
#include <limits>

#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "obs/exporter.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;

std::string cell(const LayerResult& r) {
  if (!r.supported) return "n/s";
  std::string s = fmt(r.peak_mb, 0);
  if (r.out_of_memory) s += "!";
  return s;
}

void print_sweep(const SweepSpec& spec, obs::RunExporter& exporter) {
  const auto points = run_sweep(spec);
  Table table("Fig. 5: peak GPU memory (MB) vs " +
              to_string(spec.parameter) + ", base " +
              base_config().to_string() + "  ('!' = exceeds 12 GB K40c)");
  std::vector<std::string> head{to_string(spec.parameter)};
  for (const auto id : frameworks::all_frameworks()) {
    head.emplace_back(frameworks::to_string(id));
  }
  table.header(head);
  for (const auto& p : points) {
    std::vector<std::string> row{std::to_string(p.value)};
    for (const auto& r : p.results) row.push_back(cell(r));
    table.row(row);
  }
  table.print(std::cout);
  export_table(exporter, table,
               "fig5_" + obs::sanitize_column(to_string(spec.parameter)));
}

void print_band_summary(obs::RunExporter& exporter) {
  struct Band {
    double lo = std::numeric_limits<double>::max();
    double hi = 0.0;
  };
  std::vector<Band> bands(frameworks::kAllFrameworks.size());
  for (const auto& spec : paper_sweeps()) {
    for (const auto& p : run_sweep(spec)) {
      for (std::size_t i = 0; i < p.results.size(); ++i) {
        const auto& r = p.results[i];
        if (!r.supported) continue;
        bands[i].lo = std::min(bands[i].lo, r.peak_mb);
        bands[i].hi = std::max(bands[i].hi, r.peak_mb);
      }
    }
  }
  Table table("Memory bands across all five sweeps (paper Fig. 5 ranges)");
  table.header({"implementation", "min (MB)", "max (MB)", "paper band"});
  const char* paper[] = {"136-3809",  "155-3810",  "170-2093",
                         "130-3709",  "125-2076",  "1632-10866",
                         "(fbfft-like, lower)"};
  for (std::size_t i = 0; i < bands.size(); ++i) {
    table.row({std::string(frameworks::to_string(
                   frameworks::kAllFrameworks[i])),
               fmt(bands[i].lo, 0), fmt(bands[i].hi, 0), paper[i]});
  }
  table.print(std::cout);
  export_table(exporter, table, "fig5_bands");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::ExportOptions::parse(argc, argv);
  obs::RunExporter exporter(opts, "bench_fig5_memory_usage");
  exporter.annotate("device", gpusim::tesla_k40c().name);
  exporter.annotate("base_config", base_config().to_string());

  std::cout << "Reproduction of Figure 5 (ICPP'16 GPU-CNN study): peak device "
               "memory across the five parameter sweeps.\n";
  for (const auto& spec : paper_sweeps()) print_sweep(spec, exporter);
  print_band_summary(exporter);
  return 0;
}
