// Device generalisation check: do the paper's findings survive a GPU
// upgrade? Re-runs the base-configuration comparison and the kernel-size
// crossover on the paper's Tesla K40c and on a GTX Titan X (Maxwell).
// The orderings — fbfft fastest at large kernels, cuDNN at small ones,
// Theano-fft slowest — should be device-independent; only absolute times
// shift with peak FLOPs and bandwidth.
#include <iostream>

#include "analysis/conv_runner.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;

void compare(const ConvConfig& cfg, const std::string& label) {
  const auto k40c = gpusim::tesla_k40c();
  const auto titan = gpusim::gtx_titan_x();
  Table table(label + " " + cfg.to_string() + ": K40c vs Titan X");
  table.header({"implementation", "K40c (ms)", "Titan X (ms)", "speedup"});
  for (const auto id : frameworks::all_frameworks()) {
    const auto a = evaluate(id, cfg, k40c);
    if (!a.supported) continue;
    const auto b = evaluate(id, cfg, titan);
    table.row({std::string(frameworks::to_string(id)),
               fmt(a.runtime_ms, 1), fmt(b.runtime_ms, 1),
               fmt(a.runtime_ms / b.runtime_ms, 2) + "x"});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Device comparison: the paper's experiment re-run on a newer "
               "GPU model.\nFindings should be ordering-stable; absolute "
               "times scale with the device.\n";
  compare(base_config(), "base");
  ConvConfig small_kernel = base_config();
  small_kernel.kernel = 3;
  compare(small_kernel, "small-kernel");
  ConvConfig large_kernel = base_config();
  large_kernel.kernel = 21;
  compare(large_kernel, "large-kernel");
  return 0;
}
