// Figure 6 + Tables I and II — "GPU performance profiling."
//
// For the five benchmarking configurations of Table I, prints the
// runtime and the paper's five nvprof metrics (achieved occupancy, warp
// execution efficiency, global load/store efficiency, IPC, shared
// efficiency), each a runtime-weighted average over the implementation's
// top kernels, plus the two shared-memory bank-conflict events. Table II
// (registers/thread and shared memory/block of the dominant kernels) is
// printed from the same kernel profiles the simulation runs.
//
// Paper anchors: most achieved occupancies < 30%; cuda-convnet2 14–22%;
// cuDNN 29–37%; Theano-fft 39–59% but slowest; Theano-CorrMM gld
// 11.6–15.8%; WEE > 97% everywhere except Theano-fft (66–81%); shared
// efficiency > 130% for cuDNN, 8–20% for Theano-fft.
#include <iostream>

#include "analysis/conv_runner.hpp"
#include "analysis/report.hpp"
#include "obs/exporter.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;

void print_table1(obs::RunExporter& exporter) {
  Table table("Table I: convolution configurations for benchmarking");
  table.header({"layer", "configuration", "channels"});
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    const auto cfg = TableOne::layer(i);
    table.row({TableOne::name(i), cfg.to_string(),
               std::to_string(cfg.channels)});
  }
  table.print(std::cout);
  export_table(exporter, table, "table1_configs");
}

void print_table2(obs::RunExporter& exporter) {
  Table table("Table II: registers per thread and shared memory per block");
  table.header({"implementation", "registers", "shared memory (KB)"});
  for (const auto id : frameworks::all_frameworks()) {
    const auto& fw = frameworks::framework(id);
    table.row({std::string(fw.name()),
               std::to_string(fw.table2_registers()),
               fmt(fw.table2_smem_kb(), 1)});
  }
  table.print(std::cout);
  export_table(exporter, table, "table2_resources");
}

void print_metric_rows(std::size_t layer, Table& combined) {
  const auto cfg = TableOne::layer(layer);
  Table table("Fig. 6 @ " + TableOne::name(layer) + " " + cfg.to_string());
  table.header({"implementation", "runtime(ms)", "occ(%)", "ipc", "wee(%)",
                "gld(%)", "gst(%)", "shared(%)"});
  for (const auto& r : evaluate_all(cfg)) {
    if (!r.supported) {
      table.row({std::string(frameworks::to_string(r.framework)), "n/s", "-",
                 "-", "-", "-", "-", "-"});
      continue;
    }
    const auto& m = r.metrics;
    table.row({std::string(frameworks::to_string(r.framework)),
               fmt(r.kernel_ms, 1), fmt(m.achieved_occupancy, 1),
               fmt(m.ipc, 2), fmt(m.warp_execution_efficiency, 1),
               fmt(m.gld_efficiency, 1), fmt(m.gst_efficiency, 1),
               fmt(m.shared_efficiency, 1)});
    combined.row({TableOne::name(layer),
                  std::string(frameworks::to_string(r.framework)),
                  fmt(r.kernel_ms, 2), fmt(m.achieved_occupancy, 2),
                  fmt(m.ipc, 3), fmt(m.warp_execution_efficiency, 2),
                  fmt(m.gld_efficiency, 2), fmt(m.gst_efficiency, 2),
                  fmt(m.shared_efficiency, 2)});
  }
  table.print(std::cout);
}

void print_bank_conflict_events(obs::RunExporter& exporter) {
  // The two nvprof *events* the paper collects alongside the metrics.
  const auto cfg = TableOne::layer(0);
  Table table(
      "nvprof events @ Conv1: shared-memory bank-conflict replays (x10^6)");
  table.header({"implementation", "ld conflicts", "st conflicts"});
  for (const auto& r : evaluate_all(cfg)) {
    if (!r.supported) continue;
    double ld = 0.0;
    double st = 0.0;
    gpusim::Profiler profiler(gpusim::tesla_k40c());
    for (const auto& k :
         frameworks::framework(r.framework).plan(cfg).kernels) {
      const auto& m = profiler.launch(k);
      ld += m.shared_load_bank_conflicts;
      st += m.shared_store_bank_conflicts;
    }
    table.row({std::string(frameworks::to_string(r.framework)),
               fmt(ld / 1e6, 1), fmt(st / 1e6, 1)});
  }
  table.print(std::cout);
  export_table(exporter, table, "fig6_bank_conflicts");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::ExportOptions::parse(argc, argv);
  obs::RunExporter exporter(opts, "bench_fig6_gpu_metrics");
  exporter.annotate("device", gpusim::tesla_k40c().name);

  std::cout << "Reproduction of Figure 6 and Tables I-II (ICPP'16 GPU-CNN "
               "study): nvprof-style metrics\nover the five benchmark "
               "configurations, runtime-weighted across top kernels.\n";
  print_table1(exporter);
  print_table2(exporter);
  Table combined("Fig. 6: runtime-weighted nvprof metrics over Table I");
  combined.header({"layer", "implementation", "runtime (ms)", "occupancy",
                   "ipc", "wee", "gld", "gst", "shared"});
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    print_metric_rows(i, combined);
  }
  export_table(exporter, combined, "fig6_metrics");
  print_bank_conflict_events(exporter);
  return 0;
}
