// Bottleneck report — the paper's conclusion: "we present a detailed
// performance analysis for those implementations and explore potential
// bottlenecks". For each implementation at each Table I configuration,
// prints which pipeline (compute, global memory, shared memory, launch)
// binds each hotspot kernel, and how kernel time splits across
// bottleneck classes.
#include <iostream>
#include <map>

#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "frameworks/framework.hpp"
#include "gpusim/profiler.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;

void report(const ConvConfig& cfg, const std::string& label) {
  Table table("bottleneck split @ " + label + " " + cfg.to_string() +
              "  (share of kernel time bound by each pipeline)");
  table.header({"implementation", "compute", "global-mem", "shared-mem",
                "launch", "dominant kernel", "its bottleneck"});
  for (const auto id : frameworks::all_frameworks()) {
    const auto& fw = frameworks::framework(id);
    if (!fw.supports(cfg).ok) continue;
    gpusim::Profiler profiler(gpusim::tesla_k40c());
    std::map<gpusim::Bottleneck, double> split;
    double total = 0.0;
    std::string heaviest_name;
    gpusim::Bottleneck heaviest_kind{};
    double heaviest_ms = 0.0;
    for (const auto& k : fw.plan(cfg).kernels) {
      const auto& m = profiler.launch(k);
      split[m.bottleneck] += m.duration_ms;
      total += m.duration_ms;
      if (m.duration_ms > heaviest_ms) {
        heaviest_ms = m.duration_ms;
        heaviest_name = k.name;
        heaviest_kind = m.bottleneck;
      }
    }
    const auto share = [&](gpusim::Bottleneck b) {
      const auto it = split.find(b);
      return fmt_percent(it == split.end() ? 0.0 : it->second / total, 0);
    };
    table.row({std::string(fw.name()),
               share(gpusim::Bottleneck::kCompute),
               share(gpusim::Bottleneck::kGlobalMemory),
               share(gpusim::Bottleneck::kSharedMemory),
               share(gpusim::Bottleneck::kLaunch), heaviest_name,
               gpusim::to_string(heaviest_kind)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout << "Bottleneck analysis (paper conclusion: \"explore potential "
               "bottlenecks and acceleration\nopportunities\"): which "
               "pipeline bounds each implementation's kernels.\n";
  report(base_config(), "base");
  for (const std::size_t i : {0UL, 1UL, 4UL}) {
    report(TableOne::layer(i), TableOne::name(i));
  }
  return 0;
}
