// Stream-scheduling ablation: mechanising the paper's §V.D transfer
// advice with the timeline model.
//
// For each implementation at each Table I configuration, builds three
// schedules of two consecutive training iterations:
//   sync      — copies and kernels serialised on one stream (worst case);
//   async     — copies on a copy stream, kernels waiting on their own
//               iteration's copy (cudaMemcpyAsync);
//   prefetch  — iteration i+1's copy issued during iteration i's compute
//               (Caffe's data-prefetch thread).
// The makespans show why the paper measures ~0% transfer overhead for
// prefetching frameworks and 1-15% (or 60%+) for synchronous ones.
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/timeline.hpp"
#include "obs/exporter.hpp"
#include "obs/trace.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;
using gpusim::TimelineItem;

struct IterationCost {
  double kernels_ms = 0.0;
  double copies_ms = 0.0;  // raw, before any overlap
};

IterationCost iteration_cost(frameworks::FrameworkId id,
                             const ConvConfig& cfg) {
  const auto dev = gpusim::tesla_k40c();
  const auto plan = frameworks::framework(id).plan(cfg);
  gpusim::Profiler profiler(dev);
  IterationCost cost;
  for (const auto& k : plan.kernels) {
    cost.kernels_ms += profiler.launch(k).duration_ms;
  }
  for (const auto& t : plan.transfers) {
    cost.copies_ms += gpusim::raw_transfer_ms(dev, t);
  }
  return cost;
}

double schedule_two_iterations(const IterationCost& cost,
                               const char* mode) {
  using Kind = TimelineItem::Kind;
  std::vector<TimelineItem> items;
  const std::string m(mode);
  if (m == "sync") {
    for (int iter = 0; iter < 2; ++iter) {
      items.push_back({Kind::kTransfer, "copy", 0, cost.copies_ms, {}});
      items.push_back({Kind::kKernel, "iter", 0, cost.kernels_ms, {}});
    }
  } else if (m == "async") {
    // copy_i on stream 1; compute_i depends on copy_i.
    items.push_back({Kind::kTransfer, "copy0", 1, cost.copies_ms, {}});
    items.push_back({Kind::kKernel, "iter0", 0, cost.kernels_ms, {0}});
    items.push_back({Kind::kTransfer, "copy1", 1, cost.copies_ms, {}});
    items.push_back({Kind::kKernel, "iter1", 0, cost.kernels_ms, {2}});
  } else {  // prefetch: copy1 issued immediately, before iter0 finishes
    items.push_back({Kind::kTransfer, "copy0", 1, cost.copies_ms, {}});
    items.push_back({Kind::kTransfer, "copy1", 1, cost.copies_ms, {}});
    items.push_back({Kind::kKernel, "iter0", 0, cost.kernels_ms, {0}});
    items.push_back({Kind::kKernel, "iter1", 0, cost.kernels_ms, {1}});
  }
  const auto result = gpusim::schedule(items);
  // With --trace, each schedule is appended end-to-end on the
  // "streams:<mode>:stream<s>" virtual tracks for side-by-side viewing.
  gpusim::append_trace(obs::tracer(), items, result,
                       std::string("streams:") + mode);
  return result.makespan_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::ExportOptions::parse(argc, argv);
  obs::RunExporter exporter(opts, "bench_streams_ablation");
  exporter.annotate("device", gpusim::tesla_k40c().name);

  std::cout
      << "Stream-scheduling ablation over two training iterations "
         "(timeline model):\nsync = one stream; async = copy stream + "
         "dependency; prefetch = next batch copied during compute.\n";
  Table long_form("Stream-scheduling makespans (ms) over two iterations");
  long_form.header({"layer", "implementation", "sync (ms)", "async (ms)",
                    "prefetch (ms)", "prefetch gain"});
  for (const std::size_t layer : {0UL, 1UL}) {
    const auto cfg = TableOne::layer(layer);
    Table table("makespan (ms) @ " + TableOne::name(layer) + " " +
                cfg.to_string());
    table.header({"implementation", "sync", "async", "prefetch",
                  "prefetch gain"});
    for (const auto id : frameworks::all_frameworks()) {
      if (!frameworks::framework(id).supports(cfg).ok) continue;
      const auto cost = iteration_cost(id, cfg);
      const double sync = schedule_two_iterations(cost, "sync");
      const double async_ms = schedule_two_iterations(cost, "async");
      const double prefetch = schedule_two_iterations(cost, "prefetch");
      table.row({std::string(frameworks::to_string(id)), fmt(sync, 1),
                 fmt(async_ms, 1), fmt(prefetch, 1),
                 fmt(sync / prefetch, 2) + "x"});
      long_form.row({TableOne::name(layer),
                     std::string(frameworks::to_string(id)), fmt(sync, 3),
                     fmt(async_ms, 3), fmt(prefetch, 3),
                     fmt(sync / prefetch, 3)});
    }
    table.print(std::cout);
  }
  export_table(exporter, long_form, "streams_makespan");
  std::cout << "\nPrefetching recovers the entire copy cost whenever "
               "copies are shorter than compute\n(every implementation "
               "here) — the mechanism behind Caffe's ~0% in Fig. 7.\n";
  return 0;
}
