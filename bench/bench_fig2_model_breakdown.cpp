// Figure 2 — "Runtime breakdown of typical real-life CNN models:
// GoogLeNet, VGG, OverFeat and AlexNet."
//
// One simulated training iteration (forward + backward) of each model,
// layer by layer, rolled up by layer type. Paper anchor: convolutional
// layers consume the bulk of total runtime — 86%, 89%, 90% and 94%
// respectively for the four models.
#include <iostream>

#include "analysis/model_breakdown.hpp"
#include "analysis/report.hpp"
#include "obs/exporter.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;
using nn::LayerSpec;

constexpr LayerSpec::Kind kKinds[] = {
    LayerSpec::Kind::kConv,    LayerSpec::Kind::kPool,
    LayerSpec::Kind::kRelu,    LayerSpec::Kind::kFc,
    LayerSpec::Kind::kConcat,  LayerSpec::Kind::kLrn,
    LayerSpec::Kind::kDropout, LayerSpec::Kind::kSoftmax,
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::ExportOptions::parse(argc, argv);
  obs::RunExporter exporter(opts, "bench_fig2_model_breakdown");
  exporter.annotate("device", gpusim::tesla_k40c().name);

  std::cout << "Reproduction of Figure 2 (ICPP'16 GPU-CNN study): per-layer-"
               "type runtime breakdown of one training iteration.\n"
               "Paper anchors: conv share 86% / 89% / 90% / 94% for "
               "GoogLeNet / VGG / OverFeat / AlexNet.\n";

  Table table("Fig. 2: runtime share by layer type");
  table.header({"model", "batch", "total (ms)", "Conv", "Pooling", "Relu",
                "FC", "Concat", "LRN", "Dropout", "Softmax"});
  for (const auto& model : nn::figure2_models()) {
    const auto b = breakdown_model(model);
    std::vector<std::string> row{model.name, std::to_string(model.batch),
                                 fmt(b.total_ms, 0)};
    for (const auto kind : kKinds) {
      row.push_back(fmt_percent(b.share(kind)));
    }
    table.row(row);
  }
  table.print(std::cout);
  export_table(exporter, table, "fig2_breakdown");

  // Per-layer detail for AlexNet (the paper's headline model).
  const auto alex = breakdown_model(nn::alexnet());
  Table detail("AlexNet per-layer simulated times (training iteration)");
  detail.header({"layer", "type", "time (ms)"});
  for (const auto& l : alex.layers) {
    detail.row({l.name, std::string(nn::to_string(l.kind)),
                fmt(l.time_ms, 2)});
  }
  detail.print(std::cout);
  export_table(exporter, detail, "fig2_alexnet_layers");
  return 0;
}
