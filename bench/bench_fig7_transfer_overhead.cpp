// Figure 7 — "Data transfer overheads of different implementations over
// five configurations."
//
// The share of one training iteration spent in exposed (non-overlapped)
// CPU<->GPU transfers, for the five Table I configurations. Paper
// anchors: cuDNN, Caffe and fbfft ~0% (prefetch threads / pinned async
// copies); Torch-cunn, cuda-convnet2 and Theano-fft 1–15%; Theano-CorrMM
// spikes above 60% at Conv2 (host staging of the lowered buffer).
#include <iostream>

#include "analysis/conv_runner.hpp"
#include "analysis/report.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;

}  // namespace

int main() {
  std::cout << "Reproduction of Figure 7 (ICPP'16 GPU-CNN study): data "
               "transfer share of total runtime.\n";
  Table table("Fig. 7: transfer share per Table I configuration");
  std::vector<std::string> head{"implementation"};
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    head.push_back(TableOne::name(i));
  }
  table.header(head);
  for (const auto id : frameworks::all_frameworks()) {
    std::vector<std::string> row{
        std::string(frameworks::to_string(id))};
    for (std::size_t i = 0; i < TableOne::kCount; ++i) {
      const auto r = evaluate(id, TableOne::layer(i));
      row.push_back(r.supported ? fmt_percent(r.transfer_share) : "n/s");
    }
    table.row(row);
  }
  table.print(std::cout);
  std::cout << "\nPaper anchors: Caffe/cuDNN/fbfft ~0%; Torch-cunn, "
               "cuda-convnet2, Theano-fft 1-15%;\nTheano-CorrMM > 60% at "
               "Conv2 (host staging of the lowered buffer).\n";
  return 0;
}
