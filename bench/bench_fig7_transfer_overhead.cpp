// Figure 7 — "Data transfer overheads of different implementations over
// five configurations."
//
// The share of one training iteration spent in exposed (non-overlapped)
// CPU<->GPU transfers, for the five Table I configurations. Paper
// anchors: cuDNN, Caffe and fbfft ~0% (prefetch threads / pinned async
// copies); Torch-cunn, cuda-convnet2 and Theano-fft 1–15%; Theano-CorrMM
// spikes above 60% at Conv2 (host staging of the lowered buffer).
#include <iostream>

#include "analysis/conv_runner.hpp"
#include "analysis/report.hpp"
#include "obs/exporter.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::ExportOptions::parse(argc, argv);
  obs::RunExporter exporter(opts, "bench_fig7_transfer_overhead");
  exporter.annotate("device", gpusim::tesla_k40c().name);

  std::cout << "Reproduction of Figure 7 (ICPP'16 GPU-CNN study): data "
               "transfer share of total runtime.\n";
  Table table("Fig. 7: transfer share per Table I configuration");
  std::vector<std::string> head{"implementation"};
  for (std::size_t i = 0; i < TableOne::kCount; ++i) {
    head.push_back(TableOne::name(i));
  }
  table.header(head);
  Table long_form("Fig. 7: transfer share of total runtime over Table I");
  long_form.header({"layer", "implementation", "transfer share"});
  for (const auto id : frameworks::all_frameworks()) {
    std::vector<std::string> row{
        std::string(frameworks::to_string(id))};
    for (std::size_t i = 0; i < TableOne::kCount; ++i) {
      const auto r = evaluate(id, TableOne::layer(i));
      row.push_back(r.supported ? fmt_percent(r.transfer_share) : "n/s");
      if (r.supported) {
        long_form.row({TableOne::name(i),
                       std::string(frameworks::to_string(id)),
                       fmt(r.transfer_share, 4)});
      }
    }
    table.row(row);
  }
  table.print(std::cout);
  export_table(exporter, long_form, "fig7_transfers");
  std::cout << "\nPaper anchors: Caffe/cuDNN/fbfft ~0%; Torch-cunn, "
               "cuda-convnet2, Theano-fft 1-15%;\nTheano-CorrMM > 60% at "
               "Conv2 (host staging of the lowered buffer).\n";
  return 0;
}
