// Figure 4 — "Runtime breakdowns of convolutional layers in different
// implementations."
//
// At the representative configuration (64,128,64,11,1) (paper §V.A),
// prints each implementation's hotspot kernels with their share of the
// layer's kernel time, grouped the way the paper groups them ("we group
// the similar kernels who have the same functionalities into one").
// Paper anchors: GEMM dominates Caffe/Torch-cunn/Theano-CorrMM at
// 87%/83%/80%; cuDNN is dominated by wgrad_alg0_engine + cuDNN_gemm;
// cuda-convnet2 by its three direct kernels; fbfft by FFT + Transpose +
// Cgemm; Theano-fft by data preparation and transfer.
#include <iostream>
#include <map>

#include "analysis/conv_runner.hpp"
#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "obs/exporter.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;

void print_breakdown(const LayerResult& r, Table& combined) {
  for (const auto& h : r.hotspots) {
    combined.row({std::string(frameworks::to_string(r.framework)), h.name,
                  gpusim::to_string(h.kind), std::to_string(h.launches),
                  fmt(h.total_ms, 3), fmt(h.share, 4)});
  }
  Table table(std::string("Fig. 4: hotspot kernels of ") +
              std::string(frameworks::to_string(r.framework)) + " at " +
              r.config.to_string());
  table.header({"kernel", "class", "launches", "time (ms)", "share"});
  for (const auto& h : r.hotspots) {
    table.row({h.name, gpusim::to_string(h.kind),
               std::to_string(h.launches), fmt(h.total_ms, 2),
               fmt_percent(h.share)});
  }
  // The paper folds CPU-side preparation/transfer into Theano-fft's
  // breakdown; show it as an explicit row relative to total runtime.
  if (r.transfer_ms > 0.05) {
    table.row({"(CPU-GPU transfer + host prep)", "-", "-",
               fmt(r.transfer_ms, 2), fmt_percent(r.transfer_share)});
  }
  table.print(std::cout);

  // Functional-class rollup (the paper's grouping).
  std::map<std::string, double> by_class;
  double total = 0.0;
  for (const auto& h : r.hotspots) {
    by_class[gpusim::to_string(h.kind)] += h.total_ms;
    total += h.total_ms;
  }
  std::cout << "  grouped:";
  for (const auto& [name, ms] : by_class) {
    std::cout << "  " << name << " " << fmt_percent(ms / total, 0);
  }
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::ExportOptions::parse(argc, argv);
  obs::RunExporter exporter(opts, "bench_fig4_hotspot_kernels");
  exporter.annotate("device", gpusim::tesla_k40c().name);
  exporter.annotate("base_config", base_config().to_string());

  std::cout << "Reproduction of Figure 4 (ICPP'16 GPU-CNN study): hotspot "
               "kernel breakdown at the representative configuration.\n"
               "Paper anchors: GEMM share 87%/83%/80% for "
               "Caffe/Torch-cunn/Theano-CorrMM.\n";
  const ConvConfig cfg = base_config();
  Table combined("Fig. 4: hotspot kernels at " + cfg.to_string());
  combined.header({"implementation", "kernel", "class", "launches",
                   "time (ms)", "share"});
  for (const auto& r : evaluate_all(cfg)) {
    if (!r.supported) continue;
    print_breakdown(r, combined);
  }
  export_table(exporter, combined, "fig4_hotspots");
  return 0;
}
