// "Opportunities for further optimization" (paper abstract, §V
// summaries) — each profiling subsection's suggestion applied to each
// implementation's plan, with the predicted speedup at the representative
// configuration and at the Conv2 anomaly.
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/sweep.hpp"
#include "analysis/whatif.hpp"

namespace {

using namespace gpucnn;
using namespace gpucnn::analysis;

void print_whatif(const ConvConfig& cfg, const std::string& label) {
  Table table("predicted speedup from each paper suggestion @ " + label +
              " " + cfg.to_string());
  std::vector<std::string> head{"implementation"};
  for (const auto opt : kAllOptimizations) {
    head.emplace_back(to_string(opt));
  }
  table.header(head);
  for (const auto id : frameworks::all_frameworks()) {
    if (!frameworks::framework(id).supports(cfg).ok) continue;
    std::vector<std::string> row{std::string(frameworks::to_string(id))};
    for (const auto& r : what_if(id, cfg)) {
      row.push_back(fmt(r.speedup(), 2) + "x");
    }
    table.row(row);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  std::cout
      << "What-if analysis: the paper's optimisation suggestions applied "
         "to each implementation's\nexecution plan (>1.00x = the "
         "suggestion helps that implementation on that shape).\n"
         "Paper anchors: bank conflicts are Theano-fft's primary "
         "problem; transfer fixes erase the\nTheano-CorrMM Conv2 "
         "anomaly; prefetching implementations gain nothing from "
         "transfer fixes.\n";
  print_whatif(base_config(), "base");
  print_whatif(TableOne::layer(1), "Conv2");
  return 0;
}
