// Serving micro-benchmark: closed-loop throughput vs. the dynamic
// batching size trigger (docs/SERVING.md).
//
// A fixed pool of closed-loop clients (each submits, waits, submits
// again) drives one InferenceServer per max_batch setting. With
// max_batch = 1 every request pays a full forward; as the trigger grows
// the workers amortise per-forward overheads (dispatch, planner, GEMM
// setup) across coalesced requests, which is the mechanism behind the
// paper's batch-size throughput curves — here observed end-to-end
// through the queue rather than on a bare kernel.
//
// Exports the BENCH_serving_micro table (stem `serving_micro`; schema
// in docs/METRICS.md).
#include <cstddef>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "core/timer.hpp"
#include "nn/model_spec.hpp"
#include "obs/exporter.hpp"
#include "serve/server.hpp"

namespace {

using namespace gpucnn;
using analysis::fmt;
using analysis::Table;

struct Measurement {
  std::size_t max_batch = 0;
  std::int64_t requests = 0;
  double elapsed_ms = 0.0;
  double throughput_rps = 0.0;
  double mean_batch = 0.0;
  double p99_ms = 0.0;
};

Measurement drive(std::size_t max_batch, std::size_t clients,
                  std::size_t per_client, const Tensor& image) {
  const auto spec = nn::lenet5(1);
  serve::ServerOptions options;
  options.workers = 2;
  // FFT conv pays its filter transform once per forward, so per-image
  // cost falls as batches grow — the effect this bench quantifies.
  const auto engine = conv::Strategy::kFft;
  // The delay budget only matters when fewer than max_batch requests
  // are waiting; closed-loop clients keep the queue primed, so batches
  // close on size and the budget is just a bound on tail latency.
  options.batch = {max_batch, 1000};
  options.input = {1, spec.layers.front().input.c,
                   spec.layers.front().input.h,
                   spec.layers.front().input.w};
  serve::InferenceServer server(
      [&spec, engine] { return spec.instantiate(engine); }, options);

  Timer wall;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (std::size_t i = 0; i < per_client; ++i) {
        server.submit(image).get();
      }
    });
  }
  for (auto& client : pool) client.join();
  const double elapsed_ms = wall.elapsed_ms();
  server.shutdown();

  const auto stats = server.stats();
  Measurement m;
  m.max_batch = max_batch;
  m.requests = stats.completed;
  m.elapsed_ms = elapsed_ms;
  m.throughput_rps =
      static_cast<double>(stats.completed) / (elapsed_ms / 1000.0);
  m.mean_batch = stats.mean_batch;
  m.p99_ms = stats.latency.p99_us / 1000.0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = obs::ExportOptions::parse(argc, argv);
  obs::RunExporter exporter(opts, "bench_serving");
  exporter.annotate("serve", "bench");
  exporter.annotate("model", "lenet5");

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kPerClient = 24;

  Rng rng(7);
  Tensor image(1, 1, 32, 32);
  image.fill_uniform(rng, 0.0F, 1.0F);

  std::cout << "Closed-loop serving throughput on LeNet-5: " << kClients
            << " clients x " << kPerClient
            << " requests per max_batch setting, 2 workers.\n";
  Table table(
      "BENCH_serving_micro: closed-loop throughput vs. batch trigger");
  table.header({"max batch", "requests", "elapsed (ms)",
                "throughput (rps)", "mean batch", "p99 (ms)"});
  double base_rps = 0.0;
  for (const std::size_t max_batch : {1UL, 2UL, 4UL, 8UL}) {
    const Measurement m = drive(max_batch, kClients, kPerClient, image);
    if (max_batch == 1) base_rps = m.throughput_rps;
    table.row({std::to_string(m.max_batch), std::to_string(m.requests),
               fmt(m.elapsed_ms, 1), fmt(m.throughput_rps, 1),
               fmt(m.mean_batch, 2), fmt(m.p99_ms, 3)});
    std::cout << "  max_batch " << m.max_batch << ": "
              << fmt(m.throughput_rps, 1) << " rps ("
              << fmt(m.throughput_rps / base_rps, 2) << "x batch-1), "
              << "mean batch " << fmt(m.mean_batch, 2) << ", p99 "
              << fmt(m.p99_ms, 2) << " ms\n";
  }
  table.print(std::cout);
  analysis::export_table(exporter, table, "serving_micro");
  return 0;
}
