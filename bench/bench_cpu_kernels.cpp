// Ablation microbenchmarks of the real CPU substrates (google-benchmark).
//
// These measure the library's own numerics, not the GPU model:
//   * SGEMM: blocked+packed+parallel vs the naive oracle;
//   * FFT: DIT vs DIF schedules across sizes;
//   * im2col lowering throughput;
//   * the three convolution strategies head-to-head on one geometry —
//     the CPU mirror of Fig. 3(d)'s strategy crossover.
//
// Beyond the stock google-benchmark flags the binary understands
//   --quick                    short run (--benchmark_min_time=0.01[s],
//                              suffixed iff the library is >= 1.8)
//   --json / --csv [--out DIR] export a BENCH_cpu_kernels table through
//                              obs::RunExporter (schema: docs/METRICS.md)
// so CI can archive machine-readable numbers next to the figure benches.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "blas/cgemm.hpp"
#include "blas/gemm.hpp"
#include "blas/igemm.hpp"
#include "blas/packed.hpp"
#include "blas/vector_ops.hpp"
#include "conv/quantized_conv.hpp"
#include "quant/quant.hpp"
#include "conv/conv_engine.hpp"
#include "conv/depthwise_conv.hpp"
#include "conv/gemm_conv.hpp"
#include "conv/im2col.hpp"
#include "conv/winograd_conv.hpp"
#include "core/cpu_features.hpp"
#include "core/rng.hpp"
#include "core/tensor.hpp"
#include "conv/fft_conv.hpp"
#include "fft/fft.hpp"
#include "fft/rfft.hpp"
#include "obs/exporter.hpp"
#include "tune/autotuner.hpp"

namespace {

using namespace gpucnn;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

// --- SGEMM: blocked vs naive ----------------------------------------

void BM_SgemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 1);
  const auto b = random_vec(n * n, 2);
  std::vector<float> c(n * n, 0.0F);
  for (auto _ : state) {
    blas::sgemm(blas::Trans::kNo, blas::Trans::kNo, n, n, n, 1.0F, a, n, b,
                n, 0.0F, c, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmBlocked)->Arg(128)->Arg(256)->Arg(512);

void BM_SgemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 1);
  const auto b = random_vec(n * n, 2);
  std::vector<float> c(n * n, 0.0F);
  for (auto _ : state) {
    blas::sgemm_naive(blas::Trans::kNo, blas::Trans::kNo, n, n, n, 1.0F, a,
                      n, b, n, 0.0F, c, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmNaive)->Arg(128)->Arg(256);

// --- FFT schedules ---------------------------------------------------

void BM_FftDit(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fft::Plan plan(n, fft::Schedule::kDit);
  std::vector<fft::Complex> data(n);
  Rng rng(3);
  for (auto& v : data) {
    v = fft::Complex(static_cast<float>(rng.uniform(-1, 1)),
                     static_cast<float>(rng.uniform(-1, 1)));
  }
  for (auto _ : state) {
    plan.transform(data, fft::Direction::kForward);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_FftDit)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FftDif(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fft::Plan plan(n, fft::Schedule::kDif);
  std::vector<fft::Complex> data(n);
  Rng rng(3);
  for (auto& v : data) {
    v = fft::Complex(static_cast<float>(rng.uniform(-1, 1)),
                     static_cast<float>(rng.uniform(-1, 1)));
  }
  for (auto _ : state) {
    plan.transform(data, fft::Direction::kForward);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_FftDif)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Fft2d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fft::Plan plan(n);
  std::vector<fft::Complex> data(n * n, fft::Complex{1.0F, 0.0F});
  for (auto _ : state) {
    fft::transform_2d(data, plan, plan, fft::Direction::kForward);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft2d)->Arg(64)->Arg(128);

// --- real-input fast path --------------------------------------------

void BM_Rfft2(benchmark::State& state) {
  // Same plane sizes as BM_Fft2d: the half-spectrum R2C transform should
  // cost roughly half the dense complex 2-D pass above.
  const auto n = static_cast<std::size_t>(state.range(0));
  const fft::Plan plan(n);
  const auto src = random_vec(n * n, 6);
  std::vector<fft::Complex> spec(fft::half_spectrum_size(n));
  for (auto _ : state) {
    fft::rfft2(src, spec, plan);
    benchmark::DoNotOptimize(spec.data());
  }
}
BENCHMARK(BM_Rfft2)->Arg(64)->Arg(128);

void BM_Rfft2RoundTrip(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fft::Plan plan(n);
  const auto src = random_vec(n * n, 7);
  std::vector<fft::Complex> spec(fft::half_spectrum_size(n));
  std::vector<float> back(n * n);
  for (auto _ : state) {
    fft::rfft2(src, spec, plan);
    fft::irfft2(spec, back, plan);
    benchmark::DoNotOptimize(back.data());
  }
}
BENCHMARK(BM_Rfft2RoundTrip)->Arg(64)->Arg(128);

// --- im2col ----------------------------------------------------------

void BM_Im2col(benchmark::State& state) {
  const ConvConfig cfg{.batch = 1, .input = 64,
                       .channels = static_cast<std::size_t>(state.range(0)),
                       .filters = 1, .kernel = 3, .stride = 1, .pad = 1};
  const auto input = random_vec(cfg.channels * 64 * 64, 4);
  std::vector<float> col(conv::col_buffer_size(cfg));
  for (auto _ : state) {
    conv::im2col(cfg, input, col);
    benchmark::DoNotOptimize(col.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(col.size() * 4 * state.iterations()));
}
BENCHMARK(BM_Im2col)->Arg(8)->Arg(32);

// --- convolution strategies (CPU mirror of Fig. 3(d)) ----------------

void conv_strategy_bench(benchmark::State& state, conv::Strategy strategy) {
  const ConvConfig cfg{
      .batch = 2, .input = 32, .channels = 4, .filters = 8,
      .kernel = static_cast<std::size_t>(state.range(0)), .stride = 1};
  const auto engine = conv::make_engine(strategy);
  Rng rng(5);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor out(cfg.output_shape());
  for (auto _ : state) {
    engine->forward(cfg, in, w, out);
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      cfg.forward_flops() * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_ConvDirect(benchmark::State& state) {
  conv_strategy_bench(state, conv::Strategy::kDirect);
}
void BM_ConvUnrolling(benchmark::State& state) {
  conv_strategy_bench(state, conv::Strategy::kUnrolling);
}
void BM_ConvFft(benchmark::State& state) {
  conv_strategy_bench(state, conv::Strategy::kFft);
}
BENCHMARK(BM_ConvDirect)->Arg(3)->Arg(7)->Arg(13);
BENCHMARK(BM_ConvUnrolling)->Arg(3)->Arg(7)->Arg(13);
BENCHMARK(BM_ConvFft)->Arg(3)->Arg(7)->Arg(13);
void BM_ConvWinograd(benchmark::State& state) {
  conv_strategy_bench(state, conv::Strategy::kWinograd);
}
BENCHMARK(BM_ConvWinograd)->Arg(3);  // F(2x2,3x3): 3x3 kernels only

// --- depthwise and pointwise engines ---------------------------------

/// MobileNet-style interior depthwise layer: 3x3, C = 64, 56x56.
/// Acceptance geometry: DepthwiseConv must beat grouped GemmConv here —
/// the grouped im2col+GEMM path moves the whole column matrix for a
/// reduction of only k*k.
constexpr ConvConfig kDepthwiseCfg{.batch = 1, .input = 56, .channels = 64,
                                   .filters = 64, .kernel = 3, .stride = 1,
                                   .pad = 1, .groups = 64};

void depthwise_forward_bench(benchmark::State& state,
                             const conv::ConvEngine& engine) {
  Rng rng(12);
  Tensor in(kDepthwiseCfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(kDepthwiseCfg.filter_shape());
  w.fill_uniform(rng);
  Tensor out(kDepthwiseCfg.output_shape());
  for (auto _ : state) {
    engine.forward(kDepthwiseCfg, in, w, out);
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      kDepthwiseCfg.forward_flops() *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_DepthwiseConvForward(benchmark::State& state) {
  const conv::DepthwiseConv engine;
  depthwise_forward_bench(state, engine);
}
void BM_DepthwiseViaGroupedGemm(benchmark::State& state) {
  const conv::GemmConv engine;
  depthwise_forward_bench(state, engine);
}
BENCHMARK(BM_DepthwiseConvForward);
BENCHMARK(BM_DepthwiseViaGroupedGemm);

/// Pointwise (1x1) projection layer from the same separable block. The
/// fast path feeds the NCHW planes straight to SGEMM; the staged path
/// copies them through the column buffer first.
constexpr ConvConfig kPointwiseCfg{.batch = 1, .input = 56, .channels = 64,
                                   .filters = 128, .kernel = 1, .stride = 1,
                                   .pad = 0};

void pointwise_forward_bench(benchmark::State& state, bool fast_path) {
  const bool previous = conv::set_pointwise_fast_path(fast_path);
  const conv::GemmConv engine;
  Rng rng(13);
  Tensor in(kPointwiseCfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(kPointwiseCfg.filter_shape());
  w.fill_uniform(rng);
  Tensor out(kPointwiseCfg.output_shape());
  for (auto _ : state) {
    engine.forward(kPointwiseCfg, in, w, out);
    benchmark::DoNotOptimize(out.raw());
  }
  conv::set_pointwise_fast_path(previous);
  state.counters["GFLOP/s"] = benchmark::Counter(
      kPointwiseCfg.forward_flops() *
          static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_PointwiseConvDirectGemm(benchmark::State& state) {
  pointwise_forward_bench(state, /*fast_path=*/true);
}
void BM_PointwiseConvStagedIm2col(benchmark::State& state) {
  pointwise_forward_bench(state, /*fast_path=*/false);
}
BENCHMARK(BM_PointwiseConvDirectGemm);
BENCHMARK(BM_PointwiseConvStagedIm2col);

// --- FFT conv: half-spectrum vs full-complex -------------------------

void fft_conv_bench(benchmark::State& state,
                    conv::FftConv::Spectrum spectrum) {
  // The paper-representative FFT-friendly geometry (large kernel on a
  // 64x64 plane); the half/full pair quantifies the real-input win.
  const ConvConfig cfg{.batch = 4, .input = 64, .channels = 8,
                       .filters = 8, .kernel = 9, .stride = 1};
  const conv::FftConv engine(spectrum);
  Rng rng(8);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng);
  Tensor out(cfg.output_shape());
  for (auto _ : state) {
    engine.forward(cfg, in, w, out);
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      cfg.forward_flops() * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_FftConvForward(benchmark::State& state) {
  fft_conv_bench(state, conv::FftConv::Spectrum::kHalf);
}
void BM_FftConvForwardComplex(benchmark::State& state) {
  fft_conv_bench(state, conv::FftConv::Spectrum::kFull);
}
BENCHMARK(BM_FftConvForward);
BENCHMARK(BM_FftConvForwardComplex);

// --- fused conv+bias+ReLU epilogue vs separate passes ----------------
// These (and the autotune pair below) export into their own
// BENCH_autotune table; see main().

/// Geometry whose im2col GEMM is big enough to take the blocked path, so
/// the epilogue rides the packed write-back tiles.
constexpr ConvConfig kFusedCfg{.batch = 2, .input = 28, .channels = 32,
                               .filters = 64, .kernel = 3, .stride = 1,
                               .pad = 1};

void BM_ConvFusedBiasRelu(benchmark::State& state) {
  const conv::GemmConv engine;
  Rng rng(9);
  Tensor in(kFusedCfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(kFusedCfg.filter_shape());
  w.fill_uniform(rng);
  const auto bias = random_vec(kFusedCfg.filters, 10);
  Tensor out(kFusedCfg.output_shape());
  for (auto _ : state) {
    const bool fused =
        engine.forward_fused(kFusedCfg, in, w, bias, /*relu=*/true, out);
    if (!fused) state.SkipWithError("GemmConv lost its fused path");
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      kFusedCfg.forward_flops() * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConvFusedBiasRelu);

void BM_ConvThenBiasThenRelu(benchmark::State& state) {
  const conv::GemmConv engine;
  Rng rng(9);
  Tensor in(kFusedCfg.input_shape());
  in.fill_uniform(rng);
  Tensor w(kFusedCfg.filter_shape());
  w.fill_uniform(rng);
  const auto bias = random_vec(kFusedCfg.filters, 10);
  Tensor out(kFusedCfg.output_shape());
  const std::size_t inner = kFusedCfg.output() * kFusedCfg.output();
  for (auto _ : state) {
    engine.forward(kFusedCfg, in, w, out);
    blas::add_bias(out.data(), bias, kFusedCfg.batch, kFusedCfg.filters,
                   inner);
    for (float& v : out.data()) v = v > 0.0F ? v : 0.0F;
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      kFusedCfg.forward_flops() * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ConvThenBiasThenRelu);

// --- int8 GEMM and quantized conv vs fp32 ----------------------------
// The BM_Int8* benches and their fp32 twins pair up into the BENCH_int8
// table (fp32 ns / int8 ns / speedup per case); see main().

void BM_Int8Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::int8_t> a(n * n);
  std::vector<std::uint8_t> b(n * n);
  for (auto& v : a) {
    v = static_cast<std::int8_t>(rng.uniform(-63.0, 64.0));
  }
  for (auto& v : b) {
    v = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
  }
  const std::vector<float> scales(n, 0.01F);
  const std::vector<std::int32_t> row_offsets(n, 0);
  blas::QEpilogue ep;
  ep.scales = scales.data();
  ep.row_offsets = row_offsets.data();
  std::vector<float> c(n * n, 0.0F);
  for (auto _ : state) {
    blas::igemm(n, n, n, a, n, b, n, ep, c, n);
    benchmark::DoNotOptimize(c.data());
  }
  // int multiply-adds counted like the fp32 twin's FLOPs, so the
  // GFLOP/s columns of BM_SgemmBlocked and BM_Int8Gemm compare 1:1.
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Int8Gemm)->Arg(128)->Arg(256)->Arg(512);

/// Model-zoo conv shapes for the fp32-vs-int8 forward pair (batch-1
/// inference, the serving case): AlexNet conv3, VGG conv3_1, GoogLeNet
/// inception-3a 3x3, VGG conv1_2 (the memory-bound early layer whose
/// im2col matrix shrinks 4x in uint8).
constexpr ConvConfig kInt8ConvShapes[] = {
    {.batch = 1, .input = 13, .channels = 256, .filters = 384, .kernel = 3,
     .stride = 1, .pad = 1},
    {.batch = 1, .input = 56, .channels = 128, .filters = 256, .kernel = 3,
     .stride = 1, .pad = 1},
    {.batch = 1, .input = 28, .channels = 96, .filters = 128, .kernel = 3,
     .stride = 1, .pad = 1},
    {.batch = 1, .input = 224, .channels = 64, .filters = 64, .kernel = 3,
     .stride = 1, .pad = 1},
};

std::string int8_shape_name(const ConvConfig& c) {
  return std::to_string(c.batch) + "x" + std::to_string(c.channels) + "x" +
         std::to_string(c.input) + " k" + std::to_string(c.kernel) + " f" +
         std::to_string(c.filters);
}

void BM_Fp32ConvForward(benchmark::State& state) {
  const ConvConfig& cfg =
      kInt8ConvShapes[static_cast<std::size_t>(state.range(0))];
  const conv::GemmConv engine;
  Rng rng(5);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng, -1.0F, 1.0F);
  const auto bias = random_vec(cfg.filters, 10);
  Tensor out(cfg.output_shape());
  for (auto _ : state) {
    const bool fused =
        engine.forward_fused(cfg, in, w, bias, /*relu=*/true, out);
    if (!fused) state.SkipWithError("GemmConv lost its fused path");
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      cfg.forward_flops() * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fp32ConvForward)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_Int8ConvForward(benchmark::State& state) {
  const ConvConfig& cfg =
      kInt8ConvShapes[static_cast<std::size_t>(state.range(0))];
  Rng rng(5);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng, -1.0F, 1.0F);
  const auto bias = random_vec(cfg.filters, 10);
  Tensor out(cfg.output_shape());
  // The deployed path: weights prepacked offline, activation scale
  // pinned by calibration — per-iteration work is im2col_u8 + igemm.
  const auto qw = quant::quantize_filters(
      w.data(), cfg.filters,
      (cfg.channels / cfg.groups) * cfg.kernel * cfg.kernel);
  const quant::ActQuant aq = quant::choose_act_quant(-1.0F, 1.0F);
  for (auto _ : state) {
    conv::quantized_gemm_forward(cfg, in, qw, aq, bias, /*relu=*/true,
                                 out);
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      cfg.forward_flops() * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Int8ConvForward)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// --- prepacked weight reuse vs per-call packing ----------------------
// The BM_*Prepacked benches pair with the staged runs above into the
// BENCH_prepack table (staged ns / prepacked ns / speedup); see main().

void BM_SgemmPrepacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto a = random_vec(n * n, 1);
  const auto b = random_vec(n * n, 2);
  std::vector<float> c(n * n, 0.0F);
  // Weights packed once, outside the loop — the serving steady state.
  const blas::PackedMatrix pa = blas::pack_a(blas::Trans::kNo, n, n, a, n);
  for (auto _ : state) {
    blas::sgemm_prepacked(n, n, n, 1.0F, pa, blas::Trans::kNo, b, n, 0.0F,
                          c, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SgemmPrepacked)->Arg(128)->Arg(256)->Arg(512);

void BM_Int8GemmPrepacked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::int8_t> a(n * n);
  std::vector<std::uint8_t> b(n * n);
  for (auto& v : a) {
    v = static_cast<std::int8_t>(rng.uniform(-63.0, 64.0));
  }
  for (auto& v : b) {
    v = static_cast<std::uint8_t>(rng.uniform(0.0, 256.0));
  }
  const std::vector<float> scales(n, 0.01F);
  const std::vector<std::int32_t> row_offsets(n, 0);
  blas::QEpilogue ep;
  ep.scales = scales.data();
  ep.row_offsets = row_offsets.data();
  std::vector<float> c(n * n, 0.0F);
  const blas::PackedMatrixI8 pa = blas::pack_a_i8(n, n, a, n);
  for (auto _ : state) {
    blas::igemm_prepacked(n, n, n, pa, b, n, ep, c, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      blas::gemm_flops(n, n, n) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Int8GemmPrepacked)->Arg(128)->Arg(256)->Arg(512);

void BM_PrepackedConvForward(benchmark::State& state) {
  // Same shapes, inputs, and fused epilogue as BM_Fp32ConvForward; the
  // only difference is the cached weight panels.
  const ConvConfig& cfg =
      kInt8ConvShapes[static_cast<std::size_t>(state.range(0))];
  const conv::GemmConv engine;
  Rng rng(5);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng, -1.0F, 1.0F);
  const auto bias = random_vec(cfg.filters, 10);
  Tensor out(cfg.output_shape());
  const conv::PackedFilters packed = conv::prepack_filters(cfg, w);
  for (auto _ : state) {
    const bool ran = engine.forward_prepacked(cfg, in, packed, w, bias,
                                              /*relu=*/true, out);
    if (!ran) state.SkipWithError("GemmConv refused its own pack");
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      cfg.forward_flops() * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PrepackedConvForward)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// --- Winograd tile-GEMM engine vs im2col+GEMM ------------------------
// Both tile sizes run the serving steady state (fused bias+ReLU over
// prepacked transformed-filter panels — the post-freeze_for_inference
// path) on the same zoo shapes, inputs, and epilogue as
// BM_Fp32ConvForward; main() pairs them into the BENCH_winograd table.

void winograd_forward_bench(benchmark::State& state,
                            conv::WinogradTile tile) {
  const ConvConfig& cfg =
      kInt8ConvShapes[static_cast<std::size_t>(state.range(0))];
  const conv::WinogradConv engine(tile);
  Rng rng(5);
  Tensor in(cfg.input_shape());
  in.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w(cfg.filter_shape());
  w.fill_uniform(rng, -1.0F, 1.0F);
  const auto bias = random_vec(cfg.filters, 10);
  Tensor out(cfg.output_shape());
  const conv::PackedFilters packed = conv::prepack_filters(cfg, w);
  for (auto _ : state) {
    const bool ran = engine.forward_prepacked(cfg, in, packed, w, bias,
                                              /*relu=*/true, out);
    if (!ran) state.SkipWithError("WinogradConv refused its own pack");
    benchmark::DoNotOptimize(out.raw());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      cfg.forward_flops() * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_WinogradConvForwardF2(benchmark::State& state) {
  winograd_forward_bench(state, conv::WinogradTile::kF2);
}
BENCHMARK(BM_WinogradConvForwardF2)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_WinogradConvForwardF4(benchmark::State& state) {
  winograd_forward_bench(state, conv::WinogradTile::kF4);
}
BENCHMARK(BM_WinogradConvForwardF4)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// --- autotuner: cold trial cost vs warm cache hit --------------------

void BM_AutotuneColdDecide(benchmark::State& state) {
  auto& tuner = tune::Autotuner::instance();
  const tune::Mode mode_before = tuner.mode();
  const int trials_before = tuner.set_trials_for_testing(1);
  tuner.set_mode(tune::Mode::kMeasure);
  const ConvConfig cfg{.batch = 1, .input = 16, .channels = 8,
                       .filters = 16, .kernel = 3, .stride = 1, .pad = 1};
  for (auto _ : state) {
    tuner.clear();  // every iteration pays the full measurement sweep
    const auto d = tuner.decide(cfg, tune::Pass::kForward);
    benchmark::DoNotOptimize(d.engine);
  }
  tuner.clear();
  tuner.set_trials_for_testing(trials_before);
  tuner.set_mode(mode_before);
}
BENCHMARK(BM_AutotuneColdDecide);

void BM_AutotuneWarmDecide(benchmark::State& state) {
  auto& tuner = tune::Autotuner::instance();
  const tune::Mode mode_before = tuner.mode();
  const int trials_before = tuner.set_trials_for_testing(1);
  tuner.set_mode(tune::Mode::kMeasure);
  const ConvConfig cfg{.batch = 1, .input = 16, .channels = 8,
                       .filters = 16, .kernel = 3, .stride = 1, .pad = 1};
  tuner.clear();
  (void)tuner.decide(cfg, tune::Pass::kForward);  // prime the memo
  for (auto _ : state) {
    const auto d = tuner.decide(cfg, tune::Pass::kForward);
    benchmark::DoNotOptimize(d.engine);
  }
  tuner.clear();
  tuner.set_trials_for_testing(trials_before);
  tuner.set_mode(mode_before);
}
BENCHMARK(BM_AutotuneWarmDecide);

// --- CGEMM pointwise stage -------------------------------------------

void BM_CgemmPointwise(benchmark::State& state) {
  // The per-frequency product of FFT convolution: many tiny NT GEMMs.
  const std::size_t bins = 1024;
  const std::size_t n = 8, c = 4, f = 8;
  std::vector<blas::Complex> a(bins * n * c, {1.0F, 0.5F});
  std::vector<blas::Complex> b(bins * f * c, {0.5F, -1.0F});
  std::vector<blas::Complex> out(bins * n * f);
  for (auto _ : state) {
    for (std::size_t bin = 0; bin < bins; ++bin) {
      blas::cgemm_nt_conj(
          n, f, c, {1.0F, 0.0F},
          std::span<const blas::Complex>(a).subspan(bin * n * c, n * c), c,
          std::span<const blas::Complex>(b).subspan(bin * f * c, f * c), c,
          {0.0F, 0.0F},
          std::span<blas::Complex>(out).subspan(bin * n * f, n * f), f);
    }
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CgemmPointwise);

// --- reporting -------------------------------------------------------

// Console reporter that additionally collects one table row per
// benchmark run, so the numbers land in the export artifact with the
// same schema-checked layout as the figure benches.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      std::vector<std::string> row(5);
      row[0] = run.benchmark_name();
      // GetAdjustedRealTime() is per-iteration in the run's time unit;
      // benches here all use the default (ns).
      row[1] = std::to_string(run.GetAdjustedRealTime());
      row[2] = std::to_string(run.GetAdjustedCPUTime());
      row[3] = std::to_string(run.iterations);
      const auto gf = run.counters.find("GFLOP/s");
      if (gf != run.counters.end()) {
        row[4] = std::to_string(gf->second.value);
      }
      rows_.push_back(std::move(row));
    }
  }

  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::vector<std::string>> rows_;
};

// google-benchmark 1.8.0 started parsing --benchmark_min_time suffixes
// ("<N>s" / "<N>x") and deprecated suffix-less values; older releases
// reject the suffix outright. State::skipped() shipped in that same
// release, so probe it to pick the spelling the linked library accepts.
template <typename State, typename = void>
struct MinTimeTakesSuffix : std::false_type {};
template <typename State>
struct MinTimeTakesSuffix<
    State, std::void_t<decltype(std::declval<State&>().skipped())>>
    : std::true_type {};

constexpr const char* kQuickMinTimeFlag =
    MinTimeTakesSuffix<benchmark::State>::value
        ? "--benchmark_min_time=0.01s"
        : "--benchmark_min_time=0.01";

}  // namespace

int main(int argc, char** argv) {
  auto options = gpucnn::obs::ExportOptions::parse(argc, argv);

  // Rebuild argv for google-benchmark: strip --quick, and when it was
  // given inject a short min-time so the whole suite finishes in
  // seconds (CI calls this; the numbers are noisier but the ordering
  // between kernels survives).
  std::vector<char*> args;
  bool quick = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time = kQuickMinTimeFlag;
  if (quick) args.push_back(min_time.data());
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }

  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // The fused-epilogue and autotuner pairs export as their own table so
  // the executor-feature numbers are addressable separately from the
  // kernel ablations.
  const auto is_autotune_row = [](const std::vector<std::string>& row) {
    return row[0].rfind("BM_ConvFused", 0) == 0 ||
           row[0].rfind("BM_ConvThenBias", 0) == 0 ||
           row[0].rfind("BM_Autotune", 0) == 0;
  };
  std::vector<std::vector<std::string>> kernel_rows;
  std::vector<std::vector<std::string>> autotune_rows;
  for (const auto& row : reporter.rows()) {
    (is_autotune_row(row) ? autotune_rows : kernel_rows).push_back(row);
  }

  // Pair each int8 bench with its fp32 twin into the BENCH_int8
  // speedup table (the raw runs stay in BENCH_cpu_kernels too).
  const auto real_ns = [&](const std::string& name) -> double {
    for (const auto& row : reporter.rows()) {
      if (row[0] == name) return std::stod(row[1]);
    }
    return 0.0;
  };
  std::vector<std::vector<std::string>> int8_rows;
  const auto pair_row = [&](const std::string& label,
                            const std::string& fp32_name,
                            const std::string& int8_name) {
    const double fp32 = real_ns(fp32_name);
    const double int8 = real_ns(int8_name);
    if (fp32 <= 0.0 || int8 <= 0.0) return;  // filtered out of this run
    int8_rows.push_back({label, std::to_string(fp32), std::to_string(int8),
                         std::to_string(fp32 / int8)});
  };
  for (const int n : {128, 256, 512}) {
    pair_row("gemm/" + std::to_string(n),
             "BM_SgemmBlocked/" + std::to_string(n),
             "BM_Int8Gemm/" + std::to_string(n));
  }
  for (std::size_t i = 0; i < std::size(kInt8ConvShapes); ++i) {
    pair_row("conv/" + int8_shape_name(kInt8ConvShapes[i]),
             "BM_Fp32ConvForward/" + std::to_string(i),
             "BM_Int8ConvForward/" + std::to_string(i));
  }

  // Same pairing for the prepacked-vs-staged runs: the BENCH_prepack
  // table quantifies what pack-once/execute-many buys per GEMM shape.
  std::vector<std::vector<std::string>> prepack_rows;
  const auto prepack_row = [&](const std::string& label,
                               const std::string& staged_name,
                               const std::string& prepacked_name) {
    const double staged = real_ns(staged_name);
    const double prepacked = real_ns(prepacked_name);
    if (staged <= 0.0 || prepacked <= 0.0) return;
    prepack_rows.push_back({label, std::to_string(staged),
                            std::to_string(prepacked),
                            std::to_string(staged / prepacked)});
  };
  for (const int n : {128, 256, 512}) {
    prepack_row("sgemm/" + std::to_string(n),
                "BM_SgemmBlocked/" + std::to_string(n),
                "BM_SgemmPrepacked/" + std::to_string(n));
    prepack_row("igemm/" + std::to_string(n),
                "BM_Int8Gemm/" + std::to_string(n),
                "BM_Int8GemmPrepacked/" + std::to_string(n));
  }
  for (std::size_t i = 0; i < std::size(kInt8ConvShapes); ++i) {
    prepack_row("conv/" + int8_shape_name(kInt8ConvShapes[i]),
                "BM_Fp32ConvForward/" + std::to_string(i),
                "BM_PrepackedConvForward/" + std::to_string(i));
  }

  // Winograd tile-GEMM vs im2col+GEMM on the same zoo shapes: both tile
  // sizes against the staged fused GemmConv forward they displace.
  std::vector<std::vector<std::string>> winograd_rows;
  const auto winograd_row = [&](const std::string& label,
                                const std::string& gemm_name,
                                const std::string& winograd_name) {
    const double gemm = real_ns(gemm_name);
    const double winograd = real_ns(winograd_name);
    if (gemm <= 0.0 || winograd <= 0.0) return;
    winograd_rows.push_back({label, std::to_string(gemm),
                             std::to_string(winograd),
                             std::to_string(gemm / winograd)});
  };
  for (std::size_t i = 0; i < std::size(kInt8ConvShapes); ++i) {
    const std::string shape = int8_shape_name(kInt8ConvShapes[i]);
    winograd_row("conv-f2/" + shape,
                 "BM_Fp32ConvForward/" + std::to_string(i),
                 "BM_WinogradConvForwardF2/" + std::to_string(i));
    winograd_row("conv-f4/" + shape,
                 "BM_Fp32ConvForward/" + std::to_string(i),
                 "BM_WinogradConvForwardF4/" + std::to_string(i));
  }

  gpucnn::obs::RunExporter exporter(options, "bench_cpu_kernels");
  exporter.annotate("simd", gpucnn::simd::name(gpucnn::simd::active()));
  exporter.annotate("quick", quick ? "true" : "false");
  exporter.add_table(
      "BENCH_cpu_kernels",
      "CPU kernel ablation microbenchmarks (google-benchmark runs)",
      {"benchmark", "real_time_ns", "cpu_time_ns", "iterations", "gflops"},
      kernel_rows);
  exporter.add_table(
      "BENCH_autotune",
      "Fused conv+bias+ReLU epilogue and autotuner cold/warm decide cost",
      {"benchmark", "real_time_ns", "cpu_time_ns", "iterations", "gflops"},
      autotune_rows);
  exporter.add_table(
      "BENCH_int8",
      "fp32 vs int8: blocked GEMM and fused conv forward on model-zoo "
      "shapes (speedup = fp32_real_ns / int8_real_ns)",
      {"case", "fp32_real_ns", "int8_real_ns", "speedup"}, int8_rows);
  exporter.add_table(
      "BENCH_prepack",
      "per-call weight packing vs prepacked reuse: blocked sgemm/igemm "
      "and fused conv forward (speedup = staged_real_ns / "
      "prepacked_real_ns)",
      {"case", "staged_real_ns", "prepacked_real_ns", "speedup"},
      prepack_rows);
  exporter.add_table(
      "BENCH_winograd",
      "im2col+GEMM vs Winograd tile-GEMM fused conv forward on model-zoo "
      "3x3/s1 shapes, prepacked filter panels, both tile sizes "
      "(speedup = gemm_real_ns / winograd_real_ns)",
      {"case", "gemm_real_ns", "winograd_real_ns", "speedup"},
      winograd_rows);
  exporter.finish();
  return 0;
}
