file(REMOVE_RECURSE
  "libgpucnn.a"
)
