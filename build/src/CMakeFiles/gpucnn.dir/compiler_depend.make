# Empty compiler generated dependencies file for gpucnn.
# This may be replaced when dependencies are built.
