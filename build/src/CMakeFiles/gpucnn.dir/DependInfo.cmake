
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/conv_runner.cpp" "src/CMakeFiles/gpucnn.dir/analysis/conv_runner.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/analysis/conv_runner.cpp.o.d"
  "/root/repo/src/analysis/layer_profiler.cpp" "src/CMakeFiles/gpucnn.dir/analysis/layer_profiler.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/analysis/layer_profiler.cpp.o.d"
  "/root/repo/src/analysis/model_breakdown.cpp" "src/CMakeFiles/gpucnn.dir/analysis/model_breakdown.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/analysis/model_breakdown.cpp.o.d"
  "/root/repo/src/analysis/recommend.cpp" "src/CMakeFiles/gpucnn.dir/analysis/recommend.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/analysis/recommend.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/CMakeFiles/gpucnn.dir/analysis/report.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/analysis/report.cpp.o.d"
  "/root/repo/src/analysis/sweep.cpp" "src/CMakeFiles/gpucnn.dir/analysis/sweep.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/analysis/sweep.cpp.o.d"
  "/root/repo/src/analysis/whatif.cpp" "src/CMakeFiles/gpucnn.dir/analysis/whatif.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/analysis/whatif.cpp.o.d"
  "/root/repo/src/blas/cgemm.cpp" "src/CMakeFiles/gpucnn.dir/blas/cgemm.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/blas/cgemm.cpp.o.d"
  "/root/repo/src/blas/gemm.cpp" "src/CMakeFiles/gpucnn.dir/blas/gemm.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/blas/gemm.cpp.o.d"
  "/root/repo/src/blas/vector_ops.cpp" "src/CMakeFiles/gpucnn.dir/blas/vector_ops.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/blas/vector_ops.cpp.o.d"
  "/root/repo/src/conv/conv_engine.cpp" "src/CMakeFiles/gpucnn.dir/conv/conv_engine.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/conv/conv_engine.cpp.o.d"
  "/root/repo/src/conv/direct_conv.cpp" "src/CMakeFiles/gpucnn.dir/conv/direct_conv.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/conv/direct_conv.cpp.o.d"
  "/root/repo/src/conv/fft_conv.cpp" "src/CMakeFiles/gpucnn.dir/conv/fft_conv.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/conv/fft_conv.cpp.o.d"
  "/root/repo/src/conv/gemm_conv.cpp" "src/CMakeFiles/gpucnn.dir/conv/gemm_conv.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/conv/gemm_conv.cpp.o.d"
  "/root/repo/src/conv/im2col.cpp" "src/CMakeFiles/gpucnn.dir/conv/im2col.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/conv/im2col.cpp.o.d"
  "/root/repo/src/conv/implicit_gemm_conv.cpp" "src/CMakeFiles/gpucnn.dir/conv/implicit_gemm_conv.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/conv/implicit_gemm_conv.cpp.o.d"
  "/root/repo/src/conv/tiled_fft_conv.cpp" "src/CMakeFiles/gpucnn.dir/conv/tiled_fft_conv.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/conv/tiled_fft_conv.cpp.o.d"
  "/root/repo/src/conv/winograd_conv.cpp" "src/CMakeFiles/gpucnn.dir/conv/winograd_conv.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/conv/winograd_conv.cpp.o.d"
  "/root/repo/src/core/shape.cpp" "src/CMakeFiles/gpucnn.dir/core/shape.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/core/shape.cpp.o.d"
  "/root/repo/src/core/tensor.cpp" "src/CMakeFiles/gpucnn.dir/core/tensor.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/core/tensor.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/CMakeFiles/gpucnn.dir/core/thread_pool.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/core/thread_pool.cpp.o.d"
  "/root/repo/src/fft/fft.cpp" "src/CMakeFiles/gpucnn.dir/fft/fft.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/fft/fft.cpp.o.d"
  "/root/repo/src/frameworks/caffe.cpp" "src/CMakeFiles/gpucnn.dir/frameworks/caffe.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/frameworks/caffe.cpp.o.d"
  "/root/repo/src/frameworks/common.cpp" "src/CMakeFiles/gpucnn.dir/frameworks/common.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/frameworks/common.cpp.o.d"
  "/root/repo/src/frameworks/cuda_convnet2.cpp" "src/CMakeFiles/gpucnn.dir/frameworks/cuda_convnet2.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/frameworks/cuda_convnet2.cpp.o.d"
  "/root/repo/src/frameworks/cudnn.cpp" "src/CMakeFiles/gpucnn.dir/frameworks/cudnn.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/frameworks/cudnn.cpp.o.d"
  "/root/repo/src/frameworks/fbfft.cpp" "src/CMakeFiles/gpucnn.dir/frameworks/fbfft.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/frameworks/fbfft.cpp.o.d"
  "/root/repo/src/frameworks/registry.cpp" "src/CMakeFiles/gpucnn.dir/frameworks/registry.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/frameworks/registry.cpp.o.d"
  "/root/repo/src/frameworks/theano_corrmm.cpp" "src/CMakeFiles/gpucnn.dir/frameworks/theano_corrmm.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/frameworks/theano_corrmm.cpp.o.d"
  "/root/repo/src/frameworks/theano_fft.cpp" "src/CMakeFiles/gpucnn.dir/frameworks/theano_fft.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/frameworks/theano_fft.cpp.o.d"
  "/root/repo/src/frameworks/torch_cunn.cpp" "src/CMakeFiles/gpucnn.dir/frameworks/torch_cunn.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/frameworks/torch_cunn.cpp.o.d"
  "/root/repo/src/gpusim/exec_model.cpp" "src/CMakeFiles/gpucnn.dir/gpusim/exec_model.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/gpusim/exec_model.cpp.o.d"
  "/root/repo/src/gpusim/kernel.cpp" "src/CMakeFiles/gpucnn.dir/gpusim/kernel.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/gpusim/kernel.cpp.o.d"
  "/root/repo/src/gpusim/memory_tracker.cpp" "src/CMakeFiles/gpucnn.dir/gpusim/memory_tracker.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/gpusim/memory_tracker.cpp.o.d"
  "/root/repo/src/gpusim/occupancy.cpp" "src/CMakeFiles/gpucnn.dir/gpusim/occupancy.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/gpusim/occupancy.cpp.o.d"
  "/root/repo/src/gpusim/profiler.cpp" "src/CMakeFiles/gpucnn.dir/gpusim/profiler.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/gpusim/profiler.cpp.o.d"
  "/root/repo/src/gpusim/timeline.cpp" "src/CMakeFiles/gpucnn.dir/gpusim/timeline.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/gpusim/timeline.cpp.o.d"
  "/root/repo/src/gpusim/transfer.cpp" "src/CMakeFiles/gpucnn.dir/gpusim/transfer.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/gpusim/transfer.cpp.o.d"
  "/root/repo/src/nn/activation_layer.cpp" "src/CMakeFiles/gpucnn.dir/nn/activation_layer.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/activation_layer.cpp.o.d"
  "/root/repo/src/nn/adam.cpp" "src/CMakeFiles/gpucnn.dir/nn/adam.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/adam.cpp.o.d"
  "/root/repo/src/nn/conv_layer.cpp" "src/CMakeFiles/gpucnn.dir/nn/conv_layer.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/conv_layer.cpp.o.d"
  "/root/repo/src/nn/dropout_layer.cpp" "src/CMakeFiles/gpucnn.dir/nn/dropout_layer.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/dropout_layer.cpp.o.d"
  "/root/repo/src/nn/fc_layer.cpp" "src/CMakeFiles/gpucnn.dir/nn/fc_layer.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/fc_layer.cpp.o.d"
  "/root/repo/src/nn/inception_layer.cpp" "src/CMakeFiles/gpucnn.dir/nn/inception_layer.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/inception_layer.cpp.o.d"
  "/root/repo/src/nn/lrn_layer.cpp" "src/CMakeFiles/gpucnn.dir/nn/lrn_layer.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/lrn_layer.cpp.o.d"
  "/root/repo/src/nn/model_spec.cpp" "src/CMakeFiles/gpucnn.dir/nn/model_spec.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/model_spec.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/CMakeFiles/gpucnn.dir/nn/network.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/network.cpp.o.d"
  "/root/repo/src/nn/pool_layer.cpp" "src/CMakeFiles/gpucnn.dir/nn/pool_layer.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/pool_layer.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/gpucnn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/CMakeFiles/gpucnn.dir/nn/sgd.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/sgd.cpp.o.d"
  "/root/repo/src/nn/softmax.cpp" "src/CMakeFiles/gpucnn.dir/nn/softmax.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/softmax.cpp.o.d"
  "/root/repo/src/nn/synthetic_data.cpp" "src/CMakeFiles/gpucnn.dir/nn/synthetic_data.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/synthetic_data.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/gpucnn.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/gpucnn.dir/nn/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
