# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_blas[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_conv[1]_include.cmake")
include("/root/repo/build/tests/test_gpusim[1]_include.cmake")
include("/root/repo/build/tests/test_frameworks[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
