file(REMOVE_RECURSE
  "CMakeFiles/test_conv.dir/test_conv_agreement.cpp.o"
  "CMakeFiles/test_conv.dir/test_conv_agreement.cpp.o.d"
  "CMakeFiles/test_conv.dir/test_conv_property.cpp.o"
  "CMakeFiles/test_conv.dir/test_conv_property.cpp.o.d"
  "CMakeFiles/test_conv.dir/test_direct_conv.cpp.o"
  "CMakeFiles/test_conv.dir/test_direct_conv.cpp.o.d"
  "CMakeFiles/test_conv.dir/test_grouped_conv.cpp.o"
  "CMakeFiles/test_conv.dir/test_grouped_conv.cpp.o.d"
  "CMakeFiles/test_conv.dir/test_im2col.cpp.o"
  "CMakeFiles/test_conv.dir/test_im2col.cpp.o.d"
  "CMakeFiles/test_conv.dir/test_implicit_gemm.cpp.o"
  "CMakeFiles/test_conv.dir/test_implicit_gemm.cpp.o.d"
  "CMakeFiles/test_conv.dir/test_tiled_fft.cpp.o"
  "CMakeFiles/test_conv.dir/test_tiled_fft.cpp.o.d"
  "CMakeFiles/test_conv.dir/test_winograd.cpp.o"
  "CMakeFiles/test_conv.dir/test_winograd.cpp.o.d"
  "test_conv"
  "test_conv.pdb"
  "test_conv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
