
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_conv_agreement.cpp" "tests/CMakeFiles/test_conv.dir/test_conv_agreement.cpp.o" "gcc" "tests/CMakeFiles/test_conv.dir/test_conv_agreement.cpp.o.d"
  "/root/repo/tests/test_conv_property.cpp" "tests/CMakeFiles/test_conv.dir/test_conv_property.cpp.o" "gcc" "tests/CMakeFiles/test_conv.dir/test_conv_property.cpp.o.d"
  "/root/repo/tests/test_direct_conv.cpp" "tests/CMakeFiles/test_conv.dir/test_direct_conv.cpp.o" "gcc" "tests/CMakeFiles/test_conv.dir/test_direct_conv.cpp.o.d"
  "/root/repo/tests/test_grouped_conv.cpp" "tests/CMakeFiles/test_conv.dir/test_grouped_conv.cpp.o" "gcc" "tests/CMakeFiles/test_conv.dir/test_grouped_conv.cpp.o.d"
  "/root/repo/tests/test_im2col.cpp" "tests/CMakeFiles/test_conv.dir/test_im2col.cpp.o" "gcc" "tests/CMakeFiles/test_conv.dir/test_im2col.cpp.o.d"
  "/root/repo/tests/test_implicit_gemm.cpp" "tests/CMakeFiles/test_conv.dir/test_implicit_gemm.cpp.o" "gcc" "tests/CMakeFiles/test_conv.dir/test_implicit_gemm.cpp.o.d"
  "/root/repo/tests/test_tiled_fft.cpp" "tests/CMakeFiles/test_conv.dir/test_tiled_fft.cpp.o" "gcc" "tests/CMakeFiles/test_conv.dir/test_tiled_fft.cpp.o.d"
  "/root/repo/tests/test_winograd.cpp" "tests/CMakeFiles/test_conv.dir/test_winograd.cpp.o" "gcc" "tests/CMakeFiles/test_conv.dir/test_winograd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpucnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
