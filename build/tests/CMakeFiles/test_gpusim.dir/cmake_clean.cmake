file(REMOVE_RECURSE
  "CMakeFiles/test_gpusim.dir/test_devices.cpp.o"
  "CMakeFiles/test_gpusim.dir/test_devices.cpp.o.d"
  "CMakeFiles/test_gpusim.dir/test_exec_model.cpp.o"
  "CMakeFiles/test_gpusim.dir/test_exec_model.cpp.o.d"
  "CMakeFiles/test_gpusim.dir/test_memory_tracker.cpp.o"
  "CMakeFiles/test_gpusim.dir/test_memory_tracker.cpp.o.d"
  "CMakeFiles/test_gpusim.dir/test_occupancy.cpp.o"
  "CMakeFiles/test_gpusim.dir/test_occupancy.cpp.o.d"
  "CMakeFiles/test_gpusim.dir/test_profiler.cpp.o"
  "CMakeFiles/test_gpusim.dir/test_profiler.cpp.o.d"
  "CMakeFiles/test_gpusim.dir/test_timeline.cpp.o"
  "CMakeFiles/test_gpusim.dir/test_timeline.cpp.o.d"
  "CMakeFiles/test_gpusim.dir/test_transfer.cpp.o"
  "CMakeFiles/test_gpusim.dir/test_transfer.cpp.o.d"
  "test_gpusim"
  "test_gpusim.pdb"
  "test_gpusim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
