
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_devices.cpp" "tests/CMakeFiles/test_gpusim.dir/test_devices.cpp.o" "gcc" "tests/CMakeFiles/test_gpusim.dir/test_devices.cpp.o.d"
  "/root/repo/tests/test_exec_model.cpp" "tests/CMakeFiles/test_gpusim.dir/test_exec_model.cpp.o" "gcc" "tests/CMakeFiles/test_gpusim.dir/test_exec_model.cpp.o.d"
  "/root/repo/tests/test_memory_tracker.cpp" "tests/CMakeFiles/test_gpusim.dir/test_memory_tracker.cpp.o" "gcc" "tests/CMakeFiles/test_gpusim.dir/test_memory_tracker.cpp.o.d"
  "/root/repo/tests/test_occupancy.cpp" "tests/CMakeFiles/test_gpusim.dir/test_occupancy.cpp.o" "gcc" "tests/CMakeFiles/test_gpusim.dir/test_occupancy.cpp.o.d"
  "/root/repo/tests/test_profiler.cpp" "tests/CMakeFiles/test_gpusim.dir/test_profiler.cpp.o" "gcc" "tests/CMakeFiles/test_gpusim.dir/test_profiler.cpp.o.d"
  "/root/repo/tests/test_timeline.cpp" "tests/CMakeFiles/test_gpusim.dir/test_timeline.cpp.o" "gcc" "tests/CMakeFiles/test_gpusim.dir/test_timeline.cpp.o.d"
  "/root/repo/tests/test_transfer.cpp" "tests/CMakeFiles/test_gpusim.dir/test_transfer.cpp.o" "gcc" "tests/CMakeFiles/test_gpusim.dir/test_transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpucnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
