file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_error.cpp.o"
  "CMakeFiles/test_core.dir/test_error.cpp.o.d"
  "CMakeFiles/test_core.dir/test_rng.cpp.o"
  "CMakeFiles/test_core.dir/test_rng.cpp.o.d"
  "CMakeFiles/test_core.dir/test_shape.cpp.o"
  "CMakeFiles/test_core.dir/test_shape.cpp.o.d"
  "CMakeFiles/test_core.dir/test_tensor.cpp.o"
  "CMakeFiles/test_core.dir/test_tensor.cpp.o.d"
  "CMakeFiles/test_core.dir/test_thread_pool.cpp.o"
  "CMakeFiles/test_core.dir/test_thread_pool.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
