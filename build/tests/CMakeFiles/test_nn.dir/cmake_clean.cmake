file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/test_adam.cpp.o"
  "CMakeFiles/test_nn.dir/test_adam.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_inception.cpp.o"
  "CMakeFiles/test_nn.dir/test_inception.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_layers.cpp.o"
  "CMakeFiles/test_nn.dir/test_layers.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_models.cpp.o"
  "CMakeFiles/test_nn.dir/test_models.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_network.cpp.o"
  "CMakeFiles/test_nn.dir/test_network.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_serialize.cpp.o"
  "CMakeFiles/test_nn.dir/test_serialize.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_synthetic_data.cpp.o"
  "CMakeFiles/test_nn.dir/test_synthetic_data.cpp.o.d"
  "CMakeFiles/test_nn.dir/test_trainer.cpp.o"
  "CMakeFiles/test_nn.dir/test_trainer.cpp.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
