
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adam.cpp" "tests/CMakeFiles/test_nn.dir/test_adam.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_adam.cpp.o.d"
  "/root/repo/tests/test_inception.cpp" "tests/CMakeFiles/test_nn.dir/test_inception.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_inception.cpp.o.d"
  "/root/repo/tests/test_layers.cpp" "tests/CMakeFiles/test_nn.dir/test_layers.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_layers.cpp.o.d"
  "/root/repo/tests/test_models.cpp" "tests/CMakeFiles/test_nn.dir/test_models.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_models.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/test_nn.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_serialize.cpp" "tests/CMakeFiles/test_nn.dir/test_serialize.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_serialize.cpp.o.d"
  "/root/repo/tests/test_synthetic_data.cpp" "tests/CMakeFiles/test_nn.dir/test_synthetic_data.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_synthetic_data.cpp.o.d"
  "/root/repo/tests/test_trainer.cpp" "tests/CMakeFiles/test_nn.dir/test_trainer.cpp.o" "gcc" "tests/CMakeFiles/test_nn.dir/test_trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gpucnn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
