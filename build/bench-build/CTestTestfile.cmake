# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(smoke_bench_fig2_model_breakdown "/root/repo/build/bench/bench_fig2_model_breakdown")
set_tests_properties(smoke_bench_fig2_model_breakdown PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig3_runtime_sweep "/root/repo/build/bench/bench_fig3_runtime_sweep")
set_tests_properties(smoke_bench_fig3_runtime_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig4_hotspot_kernels "/root/repo/build/bench/bench_fig4_hotspot_kernels")
set_tests_properties(smoke_bench_fig4_hotspot_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig5_memory_usage "/root/repo/build/bench/bench_fig5_memory_usage")
set_tests_properties(smoke_bench_fig5_memory_usage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig6_gpu_metrics "/root/repo/build/bench/bench_fig6_gpu_metrics")
set_tests_properties(smoke_bench_fig6_gpu_metrics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_fig7_transfer_overhead "/root/repo/build/bench/bench_fig7_transfer_overhead")
set_tests_properties(smoke_bench_fig7_transfer_overhead PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_whatif_optimizations "/root/repo/build/bench/bench_whatif_optimizations")
set_tests_properties(smoke_bench_whatif_optimizations PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_device_comparison "/root/repo/build/bench/bench_device_comparison")
set_tests_properties(smoke_bench_device_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_streams_ablation "/root/repo/build/bench/bench_streams_ablation")
set_tests_properties(smoke_bench_streams_ablation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_convnet_benchmarks "/root/repo/build/bench/bench_convnet_benchmarks")
set_tests_properties(smoke_bench_convnet_benchmarks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_bottlenecks "/root/repo/build/bench/bench_bottlenecks")
set_tests_properties(smoke_bench_bottlenecks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;36;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(smoke_bench_cpu_kernels "/root/repo/build/bench/bench_cpu_kernels" "--benchmark_min_time=0.01")
set_tests_properties(smoke_bench_cpu_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;38;add_test;/root/repo/bench/CMakeLists.txt;0;")
