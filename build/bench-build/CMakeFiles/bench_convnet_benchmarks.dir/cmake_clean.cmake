file(REMOVE_RECURSE
  "../bench/bench_convnet_benchmarks"
  "../bench/bench_convnet_benchmarks.pdb"
  "CMakeFiles/bench_convnet_benchmarks.dir/bench_convnet_benchmarks.cpp.o"
  "CMakeFiles/bench_convnet_benchmarks.dir/bench_convnet_benchmarks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convnet_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
