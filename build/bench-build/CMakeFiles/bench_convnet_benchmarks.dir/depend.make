# Empty dependencies file for bench_convnet_benchmarks.
# This may be replaced when dependencies are built.
