# Empty dependencies file for bench_device_comparison.
# This may be replaced when dependencies are built.
