file(REMOVE_RECURSE
  "../bench/bench_device_comparison"
  "../bench/bench_device_comparison.pdb"
  "CMakeFiles/bench_device_comparison.dir/bench_device_comparison.cpp.o"
  "CMakeFiles/bench_device_comparison.dir/bench_device_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
