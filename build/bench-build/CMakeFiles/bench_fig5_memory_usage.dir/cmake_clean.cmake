file(REMOVE_RECURSE
  "../bench/bench_fig5_memory_usage"
  "../bench/bench_fig5_memory_usage.pdb"
  "CMakeFiles/bench_fig5_memory_usage.dir/bench_fig5_memory_usage.cpp.o"
  "CMakeFiles/bench_fig5_memory_usage.dir/bench_fig5_memory_usage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_memory_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
