# Empty dependencies file for bench_fig5_memory_usage.
# This may be replaced when dependencies are built.
