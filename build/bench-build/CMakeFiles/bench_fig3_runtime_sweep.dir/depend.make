# Empty dependencies file for bench_fig3_runtime_sweep.
# This may be replaced when dependencies are built.
