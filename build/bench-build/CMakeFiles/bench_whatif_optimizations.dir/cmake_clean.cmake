file(REMOVE_RECURSE
  "../bench/bench_whatif_optimizations"
  "../bench/bench_whatif_optimizations.pdb"
  "CMakeFiles/bench_whatif_optimizations.dir/bench_whatif_optimizations.cpp.o"
  "CMakeFiles/bench_whatif_optimizations.dir/bench_whatif_optimizations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_whatif_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
