# Empty dependencies file for bench_whatif_optimizations.
# This may be replaced when dependencies are built.
