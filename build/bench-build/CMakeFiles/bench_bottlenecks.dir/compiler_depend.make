# Empty compiler generated dependencies file for bench_bottlenecks.
# This may be replaced when dependencies are built.
