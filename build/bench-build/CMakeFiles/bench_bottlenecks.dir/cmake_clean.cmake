file(REMOVE_RECURSE
  "../bench/bench_bottlenecks"
  "../bench/bench_bottlenecks.pdb"
  "CMakeFiles/bench_bottlenecks.dir/bench_bottlenecks.cpp.o"
  "CMakeFiles/bench_bottlenecks.dir/bench_bottlenecks.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bottlenecks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
