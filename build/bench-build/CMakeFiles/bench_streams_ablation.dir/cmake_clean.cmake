file(REMOVE_RECURSE
  "../bench/bench_streams_ablation"
  "../bench/bench_streams_ablation.pdb"
  "CMakeFiles/bench_streams_ablation.dir/bench_streams_ablation.cpp.o"
  "CMakeFiles/bench_streams_ablation.dir/bench_streams_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_streams_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
