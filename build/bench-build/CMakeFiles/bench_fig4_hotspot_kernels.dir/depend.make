# Empty dependencies file for bench_fig4_hotspot_kernels.
# This may be replaced when dependencies are built.
