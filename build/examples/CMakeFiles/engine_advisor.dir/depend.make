# Empty dependencies file for engine_advisor.
# This may be replaced when dependencies are built.
