file(REMOVE_RECURSE
  "CMakeFiles/engine_advisor.dir/engine_advisor.cpp.o"
  "CMakeFiles/engine_advisor.dir/engine_advisor.cpp.o.d"
  "engine_advisor"
  "engine_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
