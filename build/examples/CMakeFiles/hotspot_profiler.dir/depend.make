# Empty dependencies file for hotspot_profiler.
# This may be replaced when dependencies are built.
