file(REMOVE_RECURSE
  "CMakeFiles/hotspot_profiler.dir/hotspot_profiler.cpp.o"
  "CMakeFiles/hotspot_profiler.dir/hotspot_profiler.cpp.o.d"
  "hotspot_profiler"
  "hotspot_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
