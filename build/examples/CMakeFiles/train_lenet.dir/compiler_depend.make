# Empty compiler generated dependencies file for train_lenet.
# This may be replaced when dependencies are built.
