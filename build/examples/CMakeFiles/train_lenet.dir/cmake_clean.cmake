file(REMOVE_RECURSE
  "CMakeFiles/train_lenet.dir/train_lenet.cpp.o"
  "CMakeFiles/train_lenet.dir/train_lenet.cpp.o.d"
  "train_lenet"
  "train_lenet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_lenet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
