# Empty compiler generated dependencies file for winograd_showdown.
# This may be replaced when dependencies are built.
