file(REMOVE_RECURSE
  "CMakeFiles/winograd_showdown.dir/winograd_showdown.cpp.o"
  "CMakeFiles/winograd_showdown.dir/winograd_showdown.cpp.o.d"
  "winograd_showdown"
  "winograd_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winograd_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
